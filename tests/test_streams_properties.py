"""Property-based stream-semantics tests: chunk invariance and restart
determinism for every stream in the package.

The paper's prequential protocol consumes streams in batches whose size is a
tunable fraction of the stream, so the data itself must never depend on the
consumption schedule.  These tests pin that contract for all synthetic
generators, the surrogate streams, every scenario transform and the full
scenario catalogue:

* ``_generate(0, n)`` is bit-identical to any chunked consumption schedule,
* ``restart()`` reproduces the identical trace (also with ``seed=None``),
* ``_generate`` is pure (re-reading a range yields identical rows).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.registry import build_scenario_pipeline, scenario_names
from repro.streams import (
    AgrawalGenerator,
    ArrayStream,
    ConceptDriftStream,
    DriftInjector,
    FeatureCorruptor,
    HyperplaneGenerator,
    ImbalanceShifter,
    LEDGenerator,
    LabelDelayer,
    LabelMasker,
    LabelNoiser,
    MixedGenerator,
    OscillatingDrift,
    RandomRBFGenerator,
    SEAGenerator,
    ScenarioPipeline,
    SchemaShifter,
    SineGenerator,
    STAGGERGenerator,
    WaveformGenerator,
    make_surrogate,
)

N = 600  # stream length under test: several blocks plus a partial block


def _sea(seed, concept=0):
    return SEAGenerator(
        n_samples=N, noise=0.05, drift_positions=(0.4,), initial_concept=concept,
        seed=seed,
    )


def _sea_pair(seed):
    base = SEAGenerator(n_samples=N, noise=0.0, drift_positions=(), seed=seed)
    alternate = SEAGenerator(
        n_samples=N, noise=0.0, drift_positions=(), initial_concept=2,
        seed=None if seed is None else seed + 1,
    )
    return base, alternate


def _array_stream(seed):
    rng = np.random.default_rng(0 if seed is None else seed)
    return ArrayStream(rng.uniform(size=(N, 4)), rng.integers(0, 3, size=N))


STREAM_FACTORIES = {
    "sea": _sea,
    "agrawal": lambda seed: AgrawalGenerator(n_samples=N, seed=seed),
    "hyperplane": lambda seed: HyperplaneGenerator(
        n_samples=N, n_features=8, n_drift_features=4, magnitude=0.01, seed=seed
    ),
    "rbf": lambda seed: RandomRBFGenerator(
        n_samples=N, n_features=5, n_classes=3, n_centroids=12,
        drift_speed=0.002, seed=seed,
    ),
    "stagger": lambda seed: STAGGERGenerator(
        n_samples=N, drift_positions=(0.5,), seed=seed
    ),
    "sine": lambda seed: SineGenerator(
        n_samples=N, drift_positions=(0.3, 0.7), seed=seed
    ),
    "mixed": lambda seed: MixedGenerator(n_samples=N, noise=0.1, seed=seed),
    "led": lambda seed: LEDGenerator(
        n_samples=N, drift_positions=(0.5,), seed=seed
    ),
    "waveform": lambda seed: WaveformGenerator(n_samples=N, seed=seed),
    "surrogate_cyclic": lambda seed: make_surrogate(
        "electricity", scale=N / 45_312, seed=seed
    ),
    "surrogate_abrupt": lambda seed: make_surrogate(
        "tueyeq", scale=N / 15_762, seed=seed
    ),
    "concept_drift_stream": lambda seed: ConceptDriftStream(
        *_sea_pair(seed), position=N // 2, width=N // 5, seed=seed
    ),
    "array": _array_stream,
    "injector_abrupt": lambda seed: DriftInjector(
        *_sea_pair(seed), mode="abrupt", position=0.5
    ),
    "injector_gradual": lambda seed: DriftInjector(
        *_sea_pair(seed), mode="gradual", position=0.5, width=0.2, seed=seed
    ),
    "injector_incremental": lambda seed: DriftInjector(
        *_sea_pair(seed), mode="incremental", position=0.3, width=0.4
    ),
    "injector_recurring": lambda seed: DriftInjector(
        *_sea_pair(seed), mode="recurring", period=0.21
    ),
    "corruptor": lambda seed: FeatureCorruptor(
        _sea(seed), missing_rate=0.2, noise_std=0.1, swap=((0, 2),),
        start=0.25, end=0.9, seed=None if seed is None else seed + 7,
    ),
    "label_noiser": lambda seed: LabelNoiser(
        _sea(seed), noise=0.3, start=0.2, seed=None if seed is None else seed + 7
    ),
    "imbalance_shifter": lambda seed: ImbalanceShifter(
        _sea(seed), class_weights=(0.9, 0.1), start=0.2, end=0.8, oversample=1.5
    ),
    "oscillating_drift": lambda seed: OscillatingDrift(
        *_sea_pair(seed), start=0.2, period=0.15, decay=0.6, min_period=0.02
    ),
    "schema_shifter": lambda seed: SchemaShifter(
        _sea(seed), schedule=((0, 0.25, 0.9), (2, 0.0, 0.5)), fill_value=0.0
    ),
    "label_delayer": lambda seed: LabelDelayer(_sea(seed), delay=50),
    "label_masker": lambda seed: LabelMasker(
        _sea(seed), rate=0.4, start=0.1, end=0.9,
        seed=None if seed is None else seed + 7,
    ),
    "pipeline": lambda seed: ScenarioPipeline(
        DriftInjector(*_sea_pair(seed), mode="gradual", seed=seed),
        layers=[
            (FeatureCorruptor, dict(missing_rate=0.1, noise_std=0.05, seed=1)),
            (LabelNoiser, dict(noise=0.1, start=0.5, seed=2)),
            (ImbalanceShifter, dict(class_weights=(0.8, 0.2), oversample=1.25)),
        ],
    ),
}
for _name in scenario_names():
    STREAM_FACTORIES[f"catalog_{_name}"] = (
        lambda seed, name=_name: build_scenario_pipeline(name, N, seed)
    )

ALL_STREAMS = sorted(STREAM_FACTORIES)


def _materialise_chunked(stream, schedule):
    """Consume a freshly restarted stream with a cyclic batch-size schedule."""
    stream.restart()
    X_parts, y_parts = [], []
    step = 0
    while stream.has_more_samples():
        X, y = stream.next_sample(schedule[step % len(schedule)])
        X_parts.append(X)
        y_parts.append(y)
        step += 1
    return np.concatenate(X_parts), np.concatenate(y_parts)


@pytest.mark.parametrize("name", ALL_STREAMS)
@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    schedule=st.lists(st.integers(1, 2 * N), min_size=1, max_size=8),
)
def test_chunk_invariance_property(name, seed, schedule):
    """Any consumption schedule yields the bit-identical trace."""
    stream = STREAM_FACTORIES[name](seed)
    X_full, y_full = stream.take()
    X_chunked, y_chunked = _materialise_chunked(stream, schedule)
    np.testing.assert_array_equal(X_full, X_chunked)
    np.testing.assert_array_equal(y_full, y_chunked)


@pytest.mark.parametrize("name", ALL_STREAMS)
@settings(max_examples=4, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_restart_determinism_property(name, seed):
    """restart() reproduces the identical trace."""
    stream = STREAM_FACTORIES[name](seed)
    stream.next_sample(N // 3)  # partially consume before the reference pass
    stream.restart()
    X_first, y_first = stream.take()
    stream.restart()
    X_second, y_second = stream.take()
    np.testing.assert_array_equal(X_first, X_second)
    np.testing.assert_array_equal(y_first, y_second)


@pytest.mark.parametrize("name", ALL_STREAMS)
def test_unseeded_streams_restart_deterministically(name):
    """seed=None draws a random entropy once; restart still reproduces it."""
    stream = STREAM_FACTORIES[name](None)
    X_first, y_first = stream.take()
    stream.restart()
    X_second, y_second = stream.take()
    np.testing.assert_array_equal(X_first, X_second)
    np.testing.assert_array_equal(y_first, y_second)


@pytest.mark.parametrize("name", ALL_STREAMS)
def test_generate_is_pure(name):
    """Re-reading any row range yields identical values (no hidden state)."""
    stream = STREAM_FACTORIES[name](3)
    start, count = stream.n_samples // 3, stream.n_samples // 4
    X_first, y_first = stream._generate(start, count)
    stream._generate(0, stream.n_samples)  # interleave an unrelated read
    X_second, y_second = stream._generate(start, count)
    np.testing.assert_array_equal(X_first, X_second)
    np.testing.assert_array_equal(y_first, y_second)


@pytest.mark.parametrize("name", ALL_STREAMS)
def test_shapes_and_label_domain(name):
    """Basic metadata contract: shapes match and labels are valid classes."""
    stream = STREAM_FACTORIES[name](5)
    X, y = stream.take()
    assert X.shape == (stream.n_samples, stream.n_features)
    assert y.shape == (stream.n_samples,)
    assert np.isin(y, np.asarray(stream.classes)).all()


def test_two_unseeded_streams_differ():
    """seed=None must not silently reuse a fixed entropy."""
    first = SEAGenerator(n_samples=N, seed=None).take()
    second = SEAGenerator(n_samples=N, seed=None).take()
    assert not np.array_equal(first[0], second[0])
