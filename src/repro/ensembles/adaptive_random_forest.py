"""Adaptive Random Forest (Gomes et al., 2017).

The Adaptive Random Forest (ARF) combines online bagging with per-tree random
feature subspaces and a warning/drift detector pair per tree: when a tree's
warning detector fires, a background tree starts training; when the drift
detector fires, the background tree replaces the foreground tree.

Following the paper's configuration, the ensemble uses 3 Hoeffding Tree weak
learners configured like the stand-alone VFDT.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.base import ComplexityReport, StreamClassifier
from repro.drift.adwin import ADWIN
from repro.telemetry import ENSEMBLE_MEMBER_DRIFT, TELEMETRY
from repro.ensembles.bagging import (
    accumulate_member_votes,
    detector_saw_mean_increase,
    make_default_member,
)
from repro.trees.vfdt import HoeffdingTreeClassifier
from repro.utils.validation import check_positive, check_random_state


class _ForestMember:
    """One ARF member: a foreground tree, detectors, optional background tree."""

    __slots__ = (
        "tree",
        "feature_indices",
        "warning_detector",
        "drift_detector",
        "background_tree",
    )

    def __init__(
        self,
        tree: StreamClassifier,
        feature_indices: np.ndarray,
        warning_detector: ADWIN,
        drift_detector: ADWIN,
    ) -> None:
        self.tree = tree
        self.feature_indices = feature_indices
        self.warning_detector = warning_detector
        self.drift_detector = drift_detector
        self.background_tree: StreamClassifier | None = None


class AdaptiveRandomForestClassifier(StreamClassifier):
    """Adaptive Random Forest of Hoeffding Trees.

    Parameters
    ----------
    n_estimators:
        Number of trees (3 in the paper's experiments).
    base_estimator_factory:
        Factory for the weak learners; defaults to a VFDT with
        majority-class leaves.
    max_features:
        Number of features available to each tree.  ``None`` uses
        ``round(sqrt(m))``, the ARF default.
    poisson_lambda:
        Rate of the online-bagging Poisson re-weighting (ARF default: 6.0).
    warning_delta / drift_delta:
        Confidence levels of the per-tree ADWIN warning and drift detectors.
    random_state:
        Seed controlling feature subspaces and Poisson draws.
    vectorized:
        Whether batched resampling, detector feeds and vote alignment are
        used (the default) or the per-row reference loops.  Bit-identical.
    """

    #: Class-level fallback so payloads written before the flag existed load.
    vectorized = True

    def __init__(
        self,
        n_estimators: int = 3,
        base_estimator_factory: Callable[[], StreamClassifier] | None = None,
        max_features: int | None = None,
        poisson_lambda: float = 6.0,
        warning_delta: float = 0.01,
        drift_delta: float = 0.001,
        random_state: int | None = None,
        vectorized: bool = True,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators!r}.")
        check_positive(poisson_lambda, "poisson_lambda")
        self.n_estimators = int(n_estimators)
        self.base_estimator_factory = (
            base_estimator_factory
            if base_estimator_factory is not None
            else HoeffdingTreeClassifier
        )
        self.max_features = max_features
        self.poisson_lambda = float(poisson_lambda)
        self.warning_delta = float(warning_delta)
        self.drift_delta = float(drift_delta)
        self.random_state = random_state
        self.vectorized = bool(vectorized)
        self._rng = check_random_state(random_state)
        self.members_: list[_ForestMember] = []
        self.n_warnings = 0
        self.n_drifts = 0

    # -------------------------------------------------------------- fitting
    def reset(self) -> "AdaptiveRandomForestClassifier":
        self.classes_ = None
        self.n_features_ = None
        self._rng = check_random_state(self.random_state)
        self.members_ = []
        self.n_warnings = 0
        self.n_drifts = 0
        return self

    def _init_members(self) -> None:
        n_sub_features = self.max_features
        if n_sub_features is None:
            n_sub_features = max(int(round(np.sqrt(self.n_features_))), 1)
        n_sub_features = min(n_sub_features, self.n_features_)
        self.members_ = []
        for _ in range(self.n_estimators):
            feature_indices = np.sort(
                self._rng.choice(self.n_features_, size=n_sub_features, replace=False)
            )
            self.members_.append(
                _ForestMember(
                    tree=self._make_estimator(),
                    feature_indices=feature_indices,
                    warning_detector=ADWIN(delta=self.warning_delta),
                    drift_detector=ADWIN(delta=self.drift_delta),
                )
            )

    def partial_fit(
        self, X: np.ndarray, y: np.ndarray, classes: np.ndarray | None = None
    ) -> "AdaptiveRandomForestClassifier":
        X, y = self._validate_input(X, y)
        self._update_classes(y, classes)
        if not self.members_:
            self._init_members()

        if self.vectorized:
            # One generator call for the whole batch: numpy fills the matrix
            # in the same draw order as the per-member calls below, and the
            # detector updates between the draws consume no randomness.
            weight_matrix = self._rng.poisson(
                self.poisson_lambda, size=(self.n_estimators, len(X))
            )
        for member_idx, member in enumerate(self.members_):
            X_sub = X[:, member.feature_indices]

            # Drift monitoring on the member's prequential errors.  A change
            # only counts as a warning/drift when the error estimate went up;
            # improvements (the error dropping while the tree learns) must not
            # reset the member.
            if member.tree.classes_ is not None:
                predictions = member.tree.predict(X_sub)
                errors = (predictions != y).astype(float)
                if self.vectorized:
                    warning = detector_saw_mean_increase(
                        member.warning_detector, errors
                    )
                    drift = detector_saw_mean_increase(
                        member.drift_detector, errors
                    )
                else:
                    warning = False
                    drift = False
                    for error in errors:
                        before = member.warning_detector.mean
                        if member.warning_detector.update(error):
                            warning = warning or member.warning_detector.mean > before
                        before = member.drift_detector.mean
                        if member.drift_detector.update(error):
                            drift = drift or member.drift_detector.mean > before
                if warning and member.background_tree is None:
                    member.background_tree = self._make_estimator()
                    self.n_warnings += 1
                if drift:
                    if member.background_tree is not None:
                        member.tree = member.background_tree
                        member.background_tree = None
                    else:
                        member.tree = self._make_estimator()
                    member.warning_detector = ADWIN(delta=self.warning_delta)
                    member.drift_detector = ADWIN(delta=self.drift_delta)
                    self.n_drifts += 1
                    if TELEMETRY.enabled:
                        TELEMETRY.emit(
                            ENSEMBLE_MEMBER_DRIFT,
                            model=type(self).__name__,
                            member=int(member_idx),
                            detector="ADWIN",
                        )
                        TELEMETRY.counter(
                            "repro.ensemble.member_drifts_total",
                            model=type(self).__name__,
                        ).inc()

            # Online bagging update of the foreground (and background) tree.
            if self.vectorized:
                weights = weight_matrix[member_idx]
            else:
                weights = self._rng.poisson(self.poisson_lambda, size=len(X))
            mask = weights > 0
            if not np.any(mask):
                continue
            X_rep = np.repeat(X_sub[mask], weights[mask], axis=0)
            y_rep = np.repeat(y[mask], weights[mask], axis=0)
            member.tree.partial_fit(X_rep, y_rep, classes=self.classes_)
            if member.background_tree is not None:
                member.background_tree.partial_fit(X_rep, y_rep, classes=self.classes_)
        return self

    def _make_estimator(self) -> StreamClassifier:
        return make_default_member(self.base_estimator_factory, self.vectorized)

    # ------------------------------------------------------------ inference
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X, _ = self._validate_input(X)
        if self.classes_ is None:
            raise RuntimeError("predict_proba() called before partial_fit().")
        votes = np.zeros((len(X), self.n_classes_))
        for member in self.members_:
            if member.tree.classes_ is None:
                continue
            proba = member.tree.predict_proba(X[:, member.feature_indices])
            accumulate_member_votes(
                votes, proba, member.tree.classes_, self.classes_, self.vectorized
            )
        row_sums = votes.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        return votes / row_sums

    # ------------------------------------------------------- interpretability
    def complexity(self) -> ComplexityReport:
        report = ComplexityReport(n_splits=0, n_parameters=0)
        for member in self.members_:
            report = report + member.tree.complexity()
        return report
