"""Serving subsystem: registry hot-swap, scoring service, champion/challenger,
and the vectorized DMT inference path."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import (
    ChampionChallenger,
    DynamicModelTree,
    HoeffdingTreeClassifier,
    ModelRegistry,
    ScoringService,
)
from repro.drift import DDM
from repro.drift.base import BaseDriftDetector
from tests.conftest import make_linear_binary, make_multiclass_blobs, make_xor


def _train(model, X, y, classes, batch: int = 100):
    for start in range(0, len(X), batch):
        model.partial_fit(X[start : start + batch], y[start : start + batch], classes=classes)
    return model


def _fitted_dmt(n: int = 4000, seed: int = 1) -> tuple[DynamicModelTree, np.ndarray]:
    """A DMT trained on scaled XOR so the tree actually grows splits."""
    X, y = make_xor(n, seed=seed)
    X = X * 3.0
    model = _train(DynamicModelTree(random_state=1), X, y, classes=[0, 1])
    return model, X


class TestVectorizedDMTInference:
    def test_route_batch_matches_sorted_leaf(self):
        model, X = _fitted_dmt()
        assert model.n_leaves > 1  # otherwise the test is vacuous
        leaves, assignments = model.root.route_batch(X[:500])
        for row, x in enumerate(X[:500]):
            assert leaves[assignments[row]] is model.root.sorted_leaf(x)

    def test_route_batch_on_leaf_only_tree(self):
        X, y = make_linear_binary(300, n_features=3, seed=0)
        model = _train(DynamicModelTree(random_state=0), X, y, classes=[0, 1])
        leaves, assignments = model.root.route_batch(X)
        assert leaves == [model.root]
        assert np.all(assignments == 0)

    def test_route_batch_empty_batch(self):
        model, _ = _fitted_dmt(n=1000)
        leaves, assignments = model.root.route_batch(np.empty((0, 2)))
        assert assignments.shape == (0,)

    def test_vectorized_matches_per_row_binary(self):
        model, X = _fitted_dmt()
        rng = np.random.default_rng(42)
        batch = rng.uniform(0.0, 3.0, size=(2000, 2))
        vectorized = model.predict_proba(batch)
        per_row = model._predict_proba_per_row(batch)
        np.testing.assert_allclose(vectorized, per_row, rtol=0.0, atol=1e-12)
        assert np.array_equal(
            np.argmax(vectorized, axis=1), np.argmax(per_row, axis=1)
        )

    def test_vectorized_matches_per_row_multiclass(self):
        X, y = make_multiclass_blobs(2000, n_classes=3, n_features=4, seed=3)
        model = _train(DynamicModelTree(random_state=0), X, y, classes=[0, 1, 2])
        rng = np.random.default_rng(7)
        batch = rng.uniform(0.0, 1.0, size=(500, 4))
        np.testing.assert_allclose(
            model.predict_proba(batch),
            model._predict_proba_per_row(batch),
            rtol=0.0,
            atol=1e-12,
        )

    def test_manual_tree_routing(self):
        """route_batch on a hand-built two-level tree hits the right leaves."""
        model, _ = _fitted_dmt(n=500)
        root = model.root
        if root.is_leaf:  # force a split structure for routing purposes
            candidate = type(
                "C", (), {"feature": 0, "threshold": 1.5, "gradient": root.gradient, "count": root.count / 2}
            )()
            root.apply_split(candidate)
        X = np.array([[0.0, 0.0], [3.0, 3.0], [1.4, 2.0], [1.6, 2.0]])
        leaves, assignments = root.route_batch(X)
        for row, x in enumerate(X):
            assert leaves[assignments[row]] is root.sorted_leaf(x)


class TestModelRegistry:
    def test_register_and_get(self):
        registry = ModelRegistry()
        entry = registry.register("clf", "model-object")
        assert entry.version == 1
        assert registry.get("clf") == "model-object"
        assert registry.names() == ["clf"]
        assert "clf" in registry

    def test_versioning_and_hot_swap(self):
        registry = ModelRegistry()
        registry.register("clf", "v1")
        entry = registry.register("clf", "v2")
        assert entry.version == 2
        assert registry.get("clf") == "v2"
        registry.activate("clf", 1)
        assert registry.get("clf") == "v1"
        assert [v.version for v in registry.versions("clf")] == [1, 2]

    def test_register_without_activation(self):
        registry = ModelRegistry()
        registry.register("clf", "v1")
        registry.register("clf", "v2", activate=False)
        assert registry.get("clf") == "v1"

    def test_rollback(self):
        registry = ModelRegistry()
        registry.register("clf", "v1")
        registry.register("clf", "v2")
        entry = registry.rollback("clf")
        assert entry.version == 1
        assert registry.get("clf") == "v1"
        with pytest.raises(ValueError, match="no earlier version"):
            registry.rollback("clf")

    def test_unknown_name_raises(self):
        registry = ModelRegistry()
        with pytest.raises(KeyError, match="No model registered"):
            registry.get("missing")
        with pytest.raises(KeyError, match="versions"):
            registry.register("clf", "v1")
            registry.get_version("clf", 7)

    def test_unregister(self):
        registry = ModelRegistry()
        registry.register("clf", "v1")
        registry.unregister("clf")
        assert "clf" not in registry

    def test_save_and_load_through_registry(self, tmp_path):
        X, y = make_linear_binary(400, n_features=3, seed=0)
        model = _train(DynamicModelTree(random_state=0), X, y, classes=[0, 1])
        registry = ModelRegistry()
        registry.register("dmt", model)
        path = tmp_path / "dmt.json"
        registry.save_active("dmt", path)

        entry = registry.load("dmt", path)
        assert entry.version == 2
        assert entry.metadata["source_path"] == str(path)
        reloaded = registry.get("dmt")
        assert np.array_equal(model.predict_proba(X), reloaded.predict_proba(X))

    def test_concurrent_swaps_always_expose_a_full_version(self):
        registry = ModelRegistry()
        registry.register("clf", "v1")

        seen = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                seen.append(registry.get("clf"))

        thread = threading.Thread(target=reader)
        thread.start()
        for swap in range(2, 30):
            registry.register("clf", f"v{swap}")
        stop.set()
        thread.join()
        assert all(value.startswith("v") for value in seen)


class TestScoringService:
    def _service(self) -> tuple[ScoringService, DynamicModelTree, np.ndarray, np.ndarray]:
        X, y = make_linear_binary(600, n_features=4, seed=1)
        model = _train(DynamicModelTree(random_state=0), X, y, classes=[0, 1])
        service = ScoringService(max_batch_size=128)
        service.registry.register("dmt", model)
        return service, model, X, y

    def test_predictions_match_direct_model_calls(self):
        service, model, X, _ = self._service()
        assert np.array_equal(service.predict("dmt", X), model.predict(X))
        assert np.array_equal(service.predict_proba("dmt", X), model.predict_proba(X))

    def test_batched_scoring_equals_whole_batch(self):
        service, model, X, _ = self._service()
        unbatched = ScoringService(registry=service.registry, max_batch_size=None)
        assert np.array_equal(
            service.predict_proba("dmt", X), unbatched.predict_proba("dmt", X)
        )

    def test_stats_accounting(self):
        service, _, X, _ = self._service()
        service.predict("dmt", X[:100])
        service.predict_proba("dmt", X[:250])
        stats = service.stats("dmt")
        assert stats["n_requests"] == 2
        assert stats["n_rows"] == 350
        assert stats["rows_per_second"] > 0
        assert stats["mean_latency_seconds"] > 0
        assert stats["max_latency_seconds"] >= stats["min_latency_seconds"]
        assert "dmt" in service.metrics()

    def test_stats_reset(self):
        service, _, X, _ = self._service()
        service.predict("dmt", X[:50])
        service.reset_stats("dmt")
        assert service.stats("dmt")["n_requests"] == 0

    def test_hot_swap_is_picked_up_on_next_request(self):
        service, model, X, y = self._service()
        before = service.predict_proba("dmt", X[:50])
        other = _train(
            HoeffdingTreeClassifier(grace_period=50), X, y, classes=[0, 1]
        )
        service.registry.register("dmt", other)
        after = service.predict_proba("dmt", X[:50])
        assert np.array_equal(after, other.predict_proba(X[:50]))
        assert not np.array_equal(before, after)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ScoringService(max_batch_size=0)


class _FireAfter(BaseDriftDetector):
    """Deterministic stub: fires on every update once n_observations > n."""

    def __init__(self, n: int) -> None:
        super().__init__()
        self.n = n

    def update(self, value: float) -> bool:
        self.n_observations += 1
        self.in_drift = self.n_observations > self.n
        return self.in_drift


class TestChampionChallenger:
    def _concepts(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0.0, 1.0, size=(3000, 4))
        weights = np.array([1.0, 1.0, -1.0, -1.0])
        y_stable = (X @ weights > 0).astype(int)
        return X, y_stable, 1 - y_stable

    def test_no_promotion_without_drift(self):
        X, y, _ = self._concepts()
        champion = _train(DynamicModelTree(random_state=0), X[:500], y[:500], [0, 1])
        registry = ModelRegistry()
        deployment = ChampionChallenger(
            registry, "clf", champion, drift_detector=DDM(min_observations=30)
        )
        deployment.set_challenger(DynamicModelTree(random_state=1))
        for start in range(500, 2000, 100):
            report = deployment.process_batch(X[start : start + 100], y[start : start + 100])
            assert not report["promoted"]
        assert deployment.n_promotions == 0
        assert registry.active_version("clf").version == 1

    def test_drift_triggers_promotion_and_hot_swap(self):
        X, y_stable, y_drifted = self._concepts()
        champion = _train(DynamicModelTree(random_state=0), X[:500], y_stable[:500], [0, 1])
        registry = ModelRegistry()
        deployment = ChampionChallenger(
            registry, "clf", champion, drift_detector=DDM(min_observations=30)
        )
        # Stable phase establishes the detector's baseline error rate.
        for start in range(500, 1500, 100):
            deployment.process_batch(X[start : start + 100], y_stable[start : start + 100])

        challenger = _train(
            DynamicModelTree(random_state=1), X[:300], y_drifted[:300], [0, 1]
        )
        deployment.set_challenger(challenger)
        promoted = False
        for start in range(1500, 3000, 100):
            report = deployment.process_batch(
                X[start : start + 100], y_drifted[start : start + 100]
            )
            if report["promoted"]:
                promoted = True
                break
        assert promoted
        assert deployment.n_promotions == 1
        assert deployment.challenger is None
        assert registry.active_version("clf").version == 2
        assert registry.get("clf") is challenger
        # The detector restarts for the new champion.
        assert deployment.drift_detector.n_observations == 0

    def test_drift_without_challenger_is_counted_but_not_promoted(self):
        X, y, _ = self._concepts()
        champion = _train(DynamicModelTree(random_state=0), X[:500], y[:500], [0, 1])
        registry = ModelRegistry()
        deployment = ChampionChallenger(
            registry, "clf", champion, drift_detector=_FireAfter(100)
        )
        for start in range(500, 1000, 100):
            report = deployment.process_batch(X[start : start + 100], y[start : start + 100])
            assert not report["promoted"]
        assert deployment.n_drifts > 0
        assert registry.active_version("clf").version == 1

    def test_challenger_without_shadow_evidence_is_not_promoted(self):
        """An untrained challenger (no shadow stats yet) must never be
        auto-promoted, even when the detector fires immediately."""
        X, y, _ = self._concepts()
        champion = _train(DynamicModelTree(random_state=0), X[:500], y[:500], [0, 1])
        registry = ModelRegistry()
        deployment = ChampionChallenger(
            registry, "clf", champion, drift_detector=_FireAfter(0)
        )
        deployment.set_challenger(DynamicModelTree(random_state=1))
        report = deployment.process_batch(X[500:600], y[500:600])
        assert report["drift"]
        assert not report["promoted"]
        assert registry.active_version("clf").version == 1

    def test_worse_challenger_is_not_promoted(self):
        X, y, y_flipped = self._concepts()
        champion = _train(DynamicModelTree(random_state=0), X[:1000], y[:1000], [0, 1])
        registry = ModelRegistry()
        deployment = ChampionChallenger(
            registry, "clf", champion, drift_detector=_FireAfter(200)
        )
        # Challenger trained on the *opposite* concept scores far worse on
        # the live stream; even when the detector fires it must not win.
        challenger = _train(
            DynamicModelTree(random_state=1), X[:1000], y_flipped[:1000], [0, 1]
        )
        deployment.set_challenger(challenger)
        for start in range(1000, 2000, 100):
            report = deployment.process_batch(X[start : start + 100], y[start : start + 100])
            assert not report["promoted"]
        assert deployment.n_drifts > 0
        assert registry.active_version("clf").version == 1

    def test_explicit_promote(self):
        X, y, _ = self._concepts()
        champion = _train(DynamicModelTree(random_state=0), X[:500], y[:500], [0, 1])
        registry = ModelRegistry()
        deployment = ChampionChallenger(registry, "clf", champion)
        with pytest.raises(RuntimeError, match="No challenger"):
            deployment.promote()
        challenger = DynamicModelTree(random_state=1)
        deployment.set_challenger(challenger)
        entry = deployment.promote()
        assert entry.version == 2
        assert registry.get("clf") is challenger
