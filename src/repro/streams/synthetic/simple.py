"""Small classic concept-drift generators: STAGGER, Sine and Mixed.

These generators are not part of the paper's headline evaluation but are
standard benchmarks for drift-adaptation behaviour and are used in the extra
experiments and in the test suite, where their simple closed-form concepts
make correctness easy to verify.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import SeededStream, drift_offsets
from repro.utils.validation import check_in_range


class STAGGERGenerator(SeededStream):
    """STAGGER concepts (Schlimmer & Granger, 1986).

    Three nominal features -- size, colour, shape -- each with three values
    (encoded 0, 1, 2) and three alternating target concepts:

    0. size = small and colour = red
    1. colour = green or shape = circle
    2. size = medium or size = large
    """

    def __init__(
        self,
        n_samples: int = 100_000,
        classification_function: int = 0,
        drift_positions: tuple[float, ...] = (),
        seed: int | None = None,
    ) -> None:
        super().__init__(n_samples=n_samples, n_features=3, n_classes=2, seed=seed)
        if not 0 <= classification_function <= 2:
            raise ValueError(
                "classification_function must be 0, 1 or 2, "
                f"got {classification_function!r}."
            )
        self.classification_function = int(classification_function)
        self.drift_positions = tuple(sorted(drift_positions))

    def concept_at(self, index: int) -> int:
        offsets = drift_offsets(
            self.drift_positions, np.array([index]), self.n_samples
        )
        return int((self.classification_function + offsets[0]) % 3)

    @staticmethod
    def _labels(concepts: np.ndarray, X: np.ndarray) -> np.ndarray:
        size, colour, shape = X[:, 0], X[:, 1], X[:, 2]
        rules = np.stack(
            [
                (size == 0) & (colour == 0),
                (colour == 1) | (shape == 0),
                size >= 1,
            ]
        ).astype(int)
        return rules[concepts, np.arange(len(X))]

    def _generate_block(
        self, rng: np.random.Generator, start: int, count: int, state: object
    ) -> tuple[np.ndarray, np.ndarray, object]:
        X = rng.integers(0, 3, size=(count, 3)).astype(float)
        offsets = drift_offsets(
            self.drift_positions, np.arange(start, start + count), self.n_samples
        )
        concepts = (self.classification_function + offsets) % 3
        return X, self._labels(concepts, X), None


class SineGenerator(SeededStream):
    """Sine generator (Gama et al., 2004): two uniform features, sine boundary.

    Four classification functions: SINE1/SINE2 and their reversed variants.
    """

    def __init__(
        self,
        n_samples: int = 100_000,
        classification_function: int = 0,
        drift_positions: tuple[float, ...] = (),
        seed: int | None = None,
    ) -> None:
        super().__init__(n_samples=n_samples, n_features=2, n_classes=2, seed=seed)
        if not 0 <= classification_function <= 3:
            raise ValueError(
                "classification_function must be in 0..3, "
                f"got {classification_function!r}."
            )
        self.classification_function = int(classification_function)
        self.drift_positions = tuple(sorted(drift_positions))

    def concept_at(self, index: int) -> int:
        offsets = drift_offsets(
            self.drift_positions, np.array([index]), self.n_samples
        )
        return int((self.classification_function + offsets[0]) % 4)

    @staticmethod
    def _labels(concepts: np.ndarray, X: np.ndarray) -> np.ndarray:
        x1, x2 = X[:, 0], X[:, 1]
        sine1 = x2 <= np.sin(x1)
        sine2 = x2 <= 0.5 + 0.3 * np.sin(3.0 * np.pi * x1)
        rules = np.stack([sine1, ~sine1, sine2, ~sine2]).astype(int)
        return rules[concepts, np.arange(len(X))]

    def _generate_block(
        self, rng: np.random.Generator, start: int, count: int, state: object
    ) -> tuple[np.ndarray, np.ndarray, object]:
        X = rng.uniform(0.0, 1.0, size=(count, 2))
        offsets = drift_offsets(
            self.drift_positions, np.arange(start, start + count), self.n_samples
        )
        concepts = (self.classification_function + offsets) % 4
        return X, self._labels(concepts, X), None


class MixedGenerator(SeededStream):
    """Mixed generator (Gama et al., 2004): two boolean and two numeric features.

    The positive class requires at least two of three conditions: ``v`` is
    true, ``w`` is true, ``z < 0.5 + 0.3 sin(3 π x)``.  The second function
    reverses the labels.
    """

    def __init__(
        self,
        n_samples: int = 100_000,
        classification_function: int = 0,
        drift_positions: tuple[float, ...] = (),
        noise: float = 0.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(n_samples=n_samples, n_features=4, n_classes=2, seed=seed)
        if classification_function not in (0, 1):
            raise ValueError(
                "classification_function must be 0 or 1, "
                f"got {classification_function!r}."
            )
        check_in_range(noise, "noise", 0.0, 1.0)
        self.classification_function = int(classification_function)
        self.drift_positions = tuple(sorted(drift_positions))
        self.noise = float(noise)

    def concept_at(self, index: int) -> int:
        offsets = drift_offsets(
            self.drift_positions, np.array([index]), self.n_samples
        )
        return int((self.classification_function + offsets[0]) % 2)

    def _generate_block(
        self, rng: np.random.Generator, start: int, count: int, state: object
    ) -> tuple[np.ndarray, np.ndarray, object]:
        v = rng.integers(0, 2, size=count)
        w = rng.integers(0, 2, size=count)
        x = rng.uniform(0.0, 1.0, size=count)
        z = rng.uniform(0.0, 1.0, size=count)
        conditions = (
            v.astype(int)
            + w.astype(int)
            + (z < 0.5 + 0.3 * np.sin(3.0 * np.pi * x)).astype(int)
        )
        base_label = (conditions >= 2).astype(int)
        offsets = drift_offsets(
            self.drift_positions, np.arange(start, start + count), self.n_samples
        )
        concepts = (self.classification_function + offsets) % 2
        y = np.where(concepts == 0, base_label, 1 - base_label)
        if self.noise > 0:
            flip = rng.random(count) < self.noise
            y = np.where(flip, 1 - y, y)
        X = np.column_stack([v, w, x, z]).astype(float)
        return X, y, None
