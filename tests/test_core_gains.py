"""Tests for the DMT gain functions and AIC thresholds."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gains import (
    aic_prune_threshold,
    aic_resplit_threshold,
    aic_split_threshold,
    approximate_candidate_loss,
    prune_gain,
    split_gain,
)


class TestCandidateLossApproximation:
    def test_zero_count_returns_parent_loss(self):
        assert approximate_candidate_loss(5.0, np.zeros(3), 0, 0.05) == 5.0

    def test_zero_gradient_keeps_parent_loss(self):
        assert approximate_candidate_loss(5.0, np.zeros(3), 10, 0.05) == 5.0

    def test_gradient_reduces_loss(self):
        loss = approximate_candidate_loss(5.0, np.array([1.0, 2.0]), 10, 0.1)
        assert loss == pytest.approx(5.0 - 0.1 / 10 * 5.0)

    def test_never_negative(self):
        loss = approximate_candidate_loss(0.1, np.array([100.0]), 1, 1.0)
        assert loss == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        parent_loss=st.floats(0.0, 1e3),
        count=st.integers(1, 1000),
        learning_rate=st.floats(1e-4, 1.0),
        seed=st.integers(0, 1000),
    )
    def test_approximation_never_exceeds_parent_loss(
        self, parent_loss, count, learning_rate, seed
    ):
        """Equation (7) subtracts a non-negative term, so it cannot increase."""
        gradient = np.random.default_rng(seed).normal(size=4)
        approx = approximate_candidate_loss(parent_loss, gradient, count, learning_rate)
        assert approx <= parent_loss + 1e-12
        assert approx >= 0.0


class TestGains:
    def test_split_gain_is_loss_difference(self):
        assert split_gain(10.0, 3.0, 4.0) == pytest.approx(3.0)

    def test_split_gain_negative_when_children_worse(self):
        assert split_gain(5.0, 4.0, 4.0) < 0

    def test_prune_gain_positive_when_leaf_model_better(self):
        assert prune_gain(subtree_leaf_loss=10.0, inner_node_loss=7.0) == pytest.approx(3.0)

    def test_prune_gain_negative_when_subtree_better(self):
        assert prune_gain(subtree_leaf_loss=5.0, inner_node_loss=9.0) < 0


class TestThresholds:
    def test_split_threshold_simplifies_to_k_minus_log_eps(self):
        # With identical model types: G >= k - log(eps)  (Section V-C).
        k = 7
        epsilon = 1e-8
        assert aic_split_threshold(k, k, k, epsilon) == pytest.approx(
            k - math.log(epsilon)
        )

    def test_split_threshold_grows_as_epsilon_shrinks(self):
        loose = aic_split_threshold(3, 3, 3, 1e-2)
        strict = aic_split_threshold(3, 3, 3, 1e-10)
        assert strict > loose

    def test_resplit_threshold_decreases_with_large_subtrees(self):
        # Replacing a big subtree by two leaves saves parameters, so the
        # threshold is lower than for replacing a small subtree.
        small = aic_resplit_threshold(3, 3, k_subtree_leaves=6, epsilon=1e-8)
        large = aic_resplit_threshold(3, 3, k_subtree_leaves=30, epsilon=1e-8)
        assert large < small

    def test_prune_threshold_rewards_parameter_savings(self):
        threshold = aic_prune_threshold(k_node=3, k_subtree_leaves=30, epsilon=1e-8)
        assert threshold < aic_prune_threshold(3, 6, 1e-8)

    def test_invalid_epsilon_raises(self):
        with pytest.raises(ValueError):
            aic_split_threshold(3, 3, 3, 0.0)
        with pytest.raises(ValueError):
            aic_resplit_threshold(3, 3, 6, 1.5)
        with pytest.raises(ValueError):
            aic_prune_threshold(3, 6, -1.0)

    @settings(max_examples=30, deadline=None)
    @given(k=st.integers(1, 100), epsilon=st.floats(1e-12, 1.0, exclude_max=True))
    def test_split_threshold_always_positive_property(self, k, epsilon):
        """For eps < 1 the threshold k - log(eps) is strictly positive, so a
        split always needs a strictly positive gain -- which is what makes the
        consistency property (Lemma 1) hold under the AIC test as well."""
        assert aic_split_threshold(k, k, k, epsilon) > 0
