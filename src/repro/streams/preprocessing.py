"""Stream preprocessing mirroring the paper's pipeline.

The paper factorises categorical string variables and normalises all features
to the ``[0, 1]`` range before use.  In a true streaming setting the range is
unknown up-front, so the scaler here is incremental: it tracks running
minima/maxima and rescales with the statistics seen so far.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import Stream


class OnlineMinMaxScaler:
    """Incremental min-max normalisation to ``[0, 1]``.

    The scaler never "un-sees" an extreme value: the transform uses the
    minimum and maximum observed so far, so early batches may be scaled with
    looser bounds than later ones -- the same behaviour one gets when
    normalising a stream on the fly.
    """

    def __init__(self, clip: bool = True) -> None:
        self.clip = bool(clip)
        self._min: np.ndarray | None = None
        self._max: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._min is not None

    def partial_fit(self, X: np.ndarray) -> "OnlineMinMaxScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}.")
        batch_min = X.min(axis=0)
        batch_max = X.max(axis=0)
        if self._min is None:
            self._min = batch_min
            self._max = batch_max
        else:
            self._min = np.minimum(self._min, batch_min)
            self._max = np.maximum(self._max, batch_max)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self._min is None:
            raise RuntimeError("transform() called before partial_fit().")
        X = np.asarray(X, dtype=float)
        span = self._max - self._min
        span = np.where(span == 0.0, 1.0, span)
        scaled = (X - self._min) / span
        if self.clip:
            scaled = np.clip(scaled, 0.0, 1.0)
        return scaled

    def partial_fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.partial_fit(X).transform(X)


class NormalizedStream:
    """Stream decorator applying online min-max normalisation to features.

    Mirrors the paper's preprocessing (features normalised to ``[0, 1]``) in
    a streaming-compatible way: the scaler is updated with every batch before
    the batch is transformed, so no future information is used.  The wrapper
    exposes the :class:`~repro.streams.base.Stream` interface and can be used
    anywhere a stream is expected.
    """

    def __init__(self, stream: Stream) -> None:
        self.stream = stream
        self.scaler = OnlineMinMaxScaler()
        self.name = getattr(stream, "name", type(stream).__name__)

    # -------------------------------------------------- delegated interface
    @property
    def n_samples(self) -> int:
        return self.stream.n_samples

    @property
    def n_features(self) -> int:
        return self.stream.n_features

    @property
    def n_classes(self) -> int:
        return self.stream.n_classes

    @property
    def classes(self) -> np.ndarray:
        return self.stream.classes

    @property
    def position(self) -> int:
        return self.stream.position

    def has_more_samples(self) -> bool:
        return self.stream.has_more_samples()

    def n_remaining_samples(self) -> int:
        return self.stream.n_remaining_samples()

    def next_sample(self, batch_size: int = 1) -> tuple[np.ndarray, np.ndarray]:
        X, y = self.stream.next_sample(batch_size)
        return self.scaler.partial_fit_transform(X), y

    def take(self, n: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        count = (
            self.n_remaining_samples() if n is None
            else min(n, self.n_remaining_samples())
        )
        if count == 0:
            return np.empty((0, self.n_features)), np.empty(0, dtype=int)
        return self.next_sample(count)

    def restart(self) -> "NormalizedStream":
        self.stream.restart()
        self.scaler = OnlineMinMaxScaler()
        return self


def factorize_columns(
    X: np.ndarray, columns: list[int] | None = None
) -> tuple[np.ndarray, dict[int, dict]]:
    """Replace categorical values by integer codes (the paper's factorisation).

    Parameters
    ----------
    X:
        Object or numeric array of shape ``(n, m)``.
    columns:
        Columns to factorise; ``None`` factorises every non-numeric column.

    Returns
    -------
    (encoded, mappings):
        ``encoded`` is a float array; ``mappings`` maps column index to the
        value-to-code dictionary used, so the same encoding can be re-applied.
    """
    X = np.asarray(X)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-dimensional, got shape {X.shape}.")
    n_rows, n_cols = X.shape
    if columns is None:
        columns = []
        for col in range(n_cols):
            try:
                np.asarray(X[:, col], dtype=float)
            except (TypeError, ValueError):
                columns.append(col)
    encoded = np.empty((n_rows, n_cols), dtype=float)
    mappings: dict[int, dict] = {}
    for col in range(n_cols):
        if col in columns:
            values, codes = np.unique(X[:, col], return_inverse=True)
            encoded[:, col] = codes.astype(float)
            mappings[col] = {value: code for code, value in enumerate(values)}
        else:
            encoded[:, col] = np.asarray(X[:, col], dtype=float)
    return encoded, mappings
