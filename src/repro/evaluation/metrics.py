"""Classification metrics for (imbalanced) streaming evaluation.

The paper reports the F1 measure because many of the evaluated data sets are
imbalanced; the implementation here provides macro- and weighted-averaged
precision, recall and F1 on top of a confusion matrix that can be updated
incrementally.
"""

from __future__ import annotations

import numpy as np

from repro.persistence.mixin import PersistableStateMixin


class ConfusionMatrix(PersistableStateMixin):
    """Incrementally updatable confusion matrix over a fixed class space.

    Rows, columns and the per-class metric arrays follow the order of the
    ``classes`` argument, which need not be sorted.
    """

    def __init__(self, classes: np.ndarray) -> None:
        self.classes = np.asarray(classes)
        if len(self.classes) < 2:
            raise ValueError("At least two classes are required.")
        if len(np.unique(self.classes)) != len(self.classes):
            raise ValueError(f"Duplicate classes in {self.classes!r}.")
        size = len(self.classes)
        self.matrix = np.zeros((size, size), dtype=float)
        # searchsorted requires a sorted array; keep a sorted view plus the
        # permutation back to the caller's class order.
        sort_order = np.argsort(self.classes, kind="stable")
        self._sorted_classes = self.classes[sort_order]
        self._sorted_to_caller = sort_order

    def _index(self, labels: np.ndarray) -> np.ndarray:
        positions = np.searchsorted(self._sorted_classes, labels)
        positions = np.clip(positions, 0, len(self._sorted_classes) - 1)
        valid = self._sorted_classes[positions] == labels
        if not np.all(valid):
            unknown = np.asarray(labels)[~valid]
            raise ValueError(f"Unknown labels encountered: {np.unique(unknown)}.")
        return self._sorted_to_caller[positions]

    def update(self, y_true: np.ndarray, y_pred: np.ndarray) -> "ConfusionMatrix":
        y_true = np.asarray(y_true)
        y_pred = np.asarray(y_pred)
        if len(y_true) != len(y_pred):
            raise ValueError("y_true and y_pred have inconsistent lengths.")
        rows = self._index(y_true)
        cols = self._index(y_pred)
        np.add.at(self.matrix, (rows, cols), 1.0)
        return self

    # ------------------------------------------------------------- metrics
    @property
    def total(self) -> float:
        return float(self.matrix.sum())

    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return float(np.trace(self.matrix) / self.total)

    def per_class_precision(self) -> np.ndarray:
        predicted = self.matrix.sum(axis=0)
        correct = np.diag(self.matrix)
        return np.divide(
            correct, predicted, out=np.zeros_like(correct), where=predicted > 0
        )

    def per_class_recall(self) -> np.ndarray:
        actual = self.matrix.sum(axis=1)
        correct = np.diag(self.matrix)
        return np.divide(
            correct, actual, out=np.zeros_like(correct), where=actual > 0
        )

    def per_class_f1(self) -> np.ndarray:
        precision = self.per_class_precision()
        recall = self.per_class_recall()
        denominator = precision + recall
        return np.divide(
            2.0 * precision * recall,
            denominator,
            out=np.zeros_like(precision),
            where=denominator > 0,
        )

    def _average(self, per_class: np.ndarray, average: str) -> float:
        support = self.matrix.sum(axis=1)
        if average == "macro":
            present = support > 0
            if not np.any(present):
                return 0.0
            return float(per_class[present].mean())
        if average == "weighted":
            if support.sum() == 0:
                return 0.0
            return float(np.average(per_class, weights=support))
        if average == "binary":
            if len(self.classes) != 2:
                raise ValueError("binary averaging requires exactly two classes.")
            # The positive class is the larger label (sklearn's default of
            # pos_label=1 for {0, 1}), independent of the caller's ordering.
            return float(per_class[int(np.argmax(self.classes))])
        raise ValueError(
            f"average must be 'macro', 'weighted' or 'binary', got {average!r}."
        )

    def precision(self, average: str = "macro") -> float:
        return self._average(self.per_class_precision(), average)

    def recall(self, average: str = "macro") -> float:
        return self._average(self.per_class_recall(), average)

    def f1(self, average: str = "macro") -> float:
        return self._average(self.per_class_f1(), average)

    def kappa(self) -> float:
        """Cohen's kappa: agreement beyond a chance classifier.

        Chance agreement is the dot product of the row and column marginals;
        degenerate windows (empty, or marginals that make chance agreement
        exactly one, e.g. a single observed class) score ``0.0``.
        """
        total = self.total
        if total == 0:
            return 0.0
        observed = float(np.trace(self.matrix)) / total
        expected = float(
            self.matrix.sum(axis=1) @ self.matrix.sum(axis=0)
        ) / (total * total)
        if expected >= 1.0:
            return 0.0
        return (observed - expected) / (1.0 - expected)

    def kappa_m(self) -> float:
        """Kappa-M: agreement beyond the majority-class classifier.

        Replaces Cohen's chance term with the accuracy of always predicting
        the most frequent *true* class (Bifet et al., 2015), which is the
        honest baseline on imbalanced streams.  Degenerate windows (empty,
        or a majority baseline that is already perfect) score ``0.0``.
        """
        total = self.total
        if total == 0:
            return 0.0
        observed = float(np.trace(self.matrix)) / total
        majority = float(self.matrix.sum(axis=1).max()) / total
        if majority >= 1.0:
            return 0.0
        return (observed - majority) / (1.0 - majority)


def _matrix_from(y_true: np.ndarray, y_pred: np.ndarray) -> ConfusionMatrix:
    classes = np.unique(np.concatenate([np.asarray(y_true), np.asarray(y_pred)]))
    if len(classes) < 2:
        classes = np.unique(np.concatenate([classes, [0, 1]]))
    matrix = ConfusionMatrix(classes)
    matrix.update(y_true, y_pred)
    return matrix


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    return _matrix_from(y_true, y_pred).accuracy()


def precision_score(
    y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro"
) -> float:
    """Averaged precision."""
    return _matrix_from(y_true, y_pred).precision(average)


def recall_score(
    y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro"
) -> float:
    """Averaged recall."""
    return _matrix_from(y_true, y_pred).recall(average)


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro") -> float:
    """Averaged F1 measure (harmonic mean of precision and recall)."""
    return _matrix_from(y_true, y_pred).f1(average)


def cohen_kappa_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Cohen's kappa (see :meth:`ConfusionMatrix.kappa`)."""
    return _matrix_from(y_true, y_pred).kappa()


def kappa_m_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Kappa-M against the majority-class baseline
    (see :meth:`ConfusionMatrix.kappa_m`)."""
    return _matrix_from(y_true, y_pred).kappa_m()


def kappa_temporal_score(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    last_label: object | None = None,
) -> float:
    """Kappa-temporal: agreement beyond the no-change classifier.

    The reference classifier predicts the *previous* true label (Zliobaite
    et al., 2015), which is the honest baseline on autocorrelated streams.
    ``last_label`` is the true label that preceded ``y_true`` (the previous
    batch's final label in a streaming evaluation); without one the first
    row counts as a no-change miss.  Degenerate windows (empty, or a
    no-change baseline that is already perfect) score ``0.0``.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred have inconsistent lengths.")
    if len(y_true) == 0:
        return 0.0
    observed = float(np.mean(y_true == y_pred))
    no_change = np.zeros(len(y_true), dtype=bool)
    no_change[1:] = y_true[1:] == y_true[:-1]
    if last_label is not None:
        no_change[0] = y_true[0] == last_label
    reference = float(np.mean(no_change))
    if reference >= 1.0:
        return 0.0
    return (observed - reference) / (1.0 - reference)
