"""Experiment runner: prequential runs over the registered data sets and models.

``run_experiment`` evaluates a single (model, data set) pair;
:class:`ExperimentSuite` runs a grid of them -- serially or sharded across
worker processes via :mod:`repro.experiments.parallel` -- and caches the
per-run :class:`~repro.evaluation.prequential.PrequentialResult` objects
(optionally persisted through a
:class:`~repro.experiments.store.ResultStore`), from which the table and
figure builders regenerate the paper's evaluation artefacts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.evaluation.prequential import PrequentialEvaluator, PrequentialResult
from repro.experiments.parallel import GridProgress, grid_configs, run_grid
from repro.experiments.registry import (
    DATASET_REGISTRY,
    MODEL_REGISTRY,
    get_dataset_spec,
    make_dataset,
    make_model,
)
from repro.experiments.store import ResultStore, RunConfig


def run_experiment(
    model_name: str,
    dataset_name: str,
    scale: float = 0.02,
    seed: int | None = 42,
    batch_fraction: float = 0.001,
    max_iterations: int | None = None,
) -> PrequentialResult:
    """Run one prequential experiment with the paper's protocol.

    Parameters
    ----------
    model_name / dataset_name:
        Keys into the model and data-set registries.
    scale:
        Fraction of the original stream length to generate (keeps runs
        laptop-sized; use 1.0 for full-scale runs).
    seed:
        Random seed shared by the stream and the model.
    batch_fraction:
        Prequential batch size as a fraction of the stream (paper: 0.001).
    max_iterations:
        Optional cap on the number of prequential iterations.
    """
    stream = make_dataset(dataset_name, scale=scale, seed=seed)
    model = make_model(model_name, seed=seed)
    evaluator = PrequentialEvaluator(batch_fraction=batch_fraction)
    return evaluator.evaluate(
        model,
        stream,
        model_name=MODEL_REGISTRY[model_name].display_name,
        dataset_name=get_dataset_spec(dataset_name).display_name,
        max_iterations=max_iterations,
    )


@dataclass
class ExperimentSuite:
    """A grid of prequential experiments with cached (and stored) results.

    Parameters
    ----------
    model_names / dataset_names:
        Registry keys to evaluate; default to the full grid of the paper.
    scale:
        Stream-length scale (default 2% of the original sizes).
    seed:
        Shared random seed.
    batch_fraction:
        Prequential batch fraction.
    max_iterations:
        Optional cap on iterations per run (useful for smoke tests).
    jobs:
        Default worker-process count of :meth:`run` (1 = serial).
    store:
        Optional :class:`ResultStore` (or a directory path) persisting every
        finished cell; an interrupted suite resumes from it.
    """

    model_names: tuple[str, ...] = tuple(MODEL_REGISTRY)
    dataset_names: tuple[str, ...] = tuple(DATASET_REGISTRY)
    scale: float = 0.02
    seed: int | None = 42
    batch_fraction: float = 0.001
    max_iterations: int | None = None
    jobs: int = 1
    store: ResultStore | None = None
    results: dict[tuple[str, str], PrequentialResult] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.store, (str, os.PathLike)):
            self.store = ResultStore(self.store)

    # ------------------------------------------------------------------ grid
    def config_for(self, model_name: str, dataset_name: str) -> RunConfig:
        """The full run configuration of one grid cell."""
        return RunConfig(
            model=model_name,
            dataset=dataset_name,
            scale=self.scale,
            seed=self.seed,
            batch_fraction=self.batch_fraction,
            max_iterations=self.max_iterations,
        )

    def configs(self) -> list[RunConfig]:
        """All grid cells of this suite (dataset-major, like the tables)."""
        return grid_configs(
            self.model_names,
            self.dataset_names,
            scale=self.scale,
            seed=self.seed,
            batch_fraction=self.batch_fraction,
            max_iterations=self.max_iterations,
        )

    # ------------------------------------------------------------------- run
    def run(
        self,
        verbose: bool = False,
        jobs: int | None = None,
        progress=None,
    ) -> "ExperimentSuite":
        """Run every missing (model, data set) combination.

        ``jobs`` overrides the suite default; with ``jobs > 1`` the cells
        are sharded across worker processes.  ``progress`` receives one
        :class:`~repro.experiments.parallel.GridProgress` event per state
        change (``verbose=True`` installs a printing callback).
        """
        if progress is None and verbose:
            progress = print_progress
        missing = [
            config
            for config in self.configs()
            if (config.model, config.dataset) not in self.results
        ]
        computed = run_grid(
            missing,
            jobs=self.jobs if jobs is None else jobs,
            store=self.store,
            progress=progress,
        )
        for config, result in computed.items():
            self.results[(config.model, config.dataset)] = result
        return self

    def get(self, model_name: str, dataset_name: str) -> PrequentialResult:
        """Result of one run (loaded from the store or run on demand)."""
        key = (model_name, dataset_name)
        if key not in self.results:
            config = self.config_for(model_name, dataset_name)
            self.results[key] = run_grid([config], store=self.store)[config]
        return self.results[key]

    def summaries(self) -> list[dict]:
        """Flat summary records of every cached run."""
        return [result.summary() for result in self.results.values()]


def print_progress(event: GridProgress) -> None:
    """Default progress callback: one line per grid-cell state change."""
    config = event.config
    timing = (
        f" [{event.elapsed_seconds:.2f}s]"
        if event.elapsed_seconds is not None
        else ""
    )
    print(
        f"[repro] {event.status:>9} {config.model} on {config.dataset} "
        f"({event.completed}/{event.total}){timing}"
    )
