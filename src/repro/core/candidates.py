"""Split-candidate statistics and bounded candidate storage for the DMT.

Every node of a Dynamic Model Tree evaluates split candidates, i.e.
``(feature, threshold)`` pairs.  For each stored candidate the node keeps the
accumulated loss, gradient and count of the *parent* model restricted to the
left partition (``x[feature] <= threshold``); right-partition statistics are
recovered by subtracting from the node totals (Algorithm 1).

Because the number of distinct candidates can grow quickly for continuous
features, the DMT stores only a bounded number of candidate statistics
(default ``3 · m``) and allows a fixed fraction of them (default 50%) to be
replaced by newly observed candidates at every time step (Section V-D).

The store keeps its statistics in structure-of-arrays form (one array per
field, candidates in insertion order), so the per-batch refresh of every
stored candidate is a single broadcast mask matrix ``X[:, feats] <= thrs``
followed by one ``(n, k) x (n, p)`` contraction instead of a Python loop per
candidate.  The accumulation primitives are chosen for bit-equivalence with
the retained per-candidate reference path (``vectorized=False``): losses and
gradients use ``np.einsum`` (sequential accumulation over rows, exactly like
summing the masked rows of a loss-augmented gradient matrix along axis 0)
rather than a BLAS matmul, whose blocked partial sums differ in the last
ulp, and the gain sweep's squared gradient norms use the same einsum loop
order as the scalar reference in :func:`approximate_candidate_loss`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.gains import approximate_candidate_loss, split_gain
from repro.telemetry import DMT_CANDIDATES, TELEMETRY



@dataclass
class CandidateStatistics:
    """Accumulated left-partition statistics of one split candidate.

    Used as the materialised per-candidate view of the structure-of-arrays
    store, as the scalar reference implementation for the vectorized gain
    sweep, and as the payload format of legacy serialized models.
    """

    feature: int
    threshold: float
    loss: float = 0.0
    gradient: np.ndarray = field(default_factory=lambda: np.zeros(0))
    count: float = 0.0

    @property
    def key(self) -> tuple[int, float]:
        return (self.feature, self.threshold)

    def add(self, loss: float, gradient: np.ndarray, count: float) -> None:
        """Accumulate the statistics of a new batch."""
        self.loss += float(loss)
        if self.gradient.size == 0:
            self.gradient = np.asarray(gradient, dtype=float).copy()
        else:
            self.gradient = self.gradient + gradient
        self.count += float(count)

    def gain(
        self,
        node_loss: float,
        node_gradient: np.ndarray,
        node_count: float,
        learning_rate: float,
        reference_loss: float | None = None,
    ) -> float:
        """Loss-based gain of this candidate.

        Parameters
        ----------
        node_loss, node_gradient, node_count:
            Accumulated statistics of the node owning this candidate.  The
            right-child statistics are derived as node minus left.
        learning_rate:
            SGD step size used in the candidate-loss approximation.
        reference_loss:
            The loss the candidate competes against.  For a leaf node this is
            the node's own loss (equation (3)); for an inner node it is the
            summed loss of the subtree's leaves (equation (4)).  Defaults to
            ``node_loss``.
        """
        if reference_loss is None:
            reference_loss = node_loss
        left_loss = approximate_candidate_loss(
            self.loss, self.gradient, self.count, learning_rate
        )
        right_gradient = (
            node_gradient - self.gradient
            if self.gradient.size
            else node_gradient
        )
        right_loss = approximate_candidate_loss(
            node_loss - self.loss,
            right_gradient,
            node_count - self.count,
            learning_rate,
        )
        return split_gain(reference_loss, left_loss, right_loss)


def augment_batch(
    per_sample_loss: np.ndarray, per_sample_gradient: np.ndarray
) -> np.ndarray:
    """Gradient matrix with the per-sample loss as an extra last column.

    The candidate store accumulates losses and gradients through the same
    sequential axis-0 summation (reference path) or einsum contraction
    (vectorized path) of this one matrix -- a separate 1-D
    ``loss[mask].sum()`` would sum the compressed subset pairwise and drift
    from the vectorized path in the last ulp.  The column layout (loss last)
    is a contract between this function, :meth:`CandidateManager.update_stored`
    and :meth:`DMTNode.update_statistics`.
    """
    return np.concatenate(
        [per_sample_gradient, per_sample_loss[:, None]], axis=1
    )


def candidate_gain_sweep(
    losses: np.ndarray,
    gradients: np.ndarray,
    counts: np.ndarray,
    node_loss: float,
    node_gradient: np.ndarray,
    node_count: float,
    learning_rate: float,
    reference_loss: float | None = None,
    assume_counts_positive: bool = False,
) -> np.ndarray:
    """Gains of all candidates in one sweep -- equations (3), (4) and (7).

    Bit-identical to calling :meth:`CandidateStatistics.gain` per candidate:
    the squared gradient norms use the same einsum accumulation order as the
    scalar reference, everything else is elementwise.
    ``assume_counts_positive`` skips the empty-subset guard on the left
    child; the candidate store guarantees it (candidates are only admitted
    with observations and counts never decrease).
    """
    if reference_loss is None:
        reference_loss = node_loss
    if len(losses) == 0:
        return np.zeros(0)
    left_norms = np.einsum("kp,kp->k", gradients, gradients)
    right_gradients = node_gradient - gradients
    right_norms = np.einsum("kp,kp->k", right_gradients, right_gradients)

    if assume_counts_positive or (counts > 0).all():
        # Common case (every stored/fresh candidate has observations):
        # skip the empty-subset guards, saving several temporaries per sweep.
        left_losses = np.maximum(
            losses - (learning_rate / counts) * left_norms, 0.0
        )
    else:
        positive = counts > 0
        safe_counts = np.where(positive, counts, 1.0)
        left_losses = np.where(
            positive,
            np.maximum(losses - (learning_rate / safe_counts) * left_norms, 0.0),
            losses,
        )
    right_counts = node_count - counts
    right_subset_losses = node_loss - losses
    right_positive = right_counts > 0
    if right_positive.all():
        right_losses = np.maximum(
            right_subset_losses - (learning_rate / right_counts) * right_norms,
            0.0,
        )
    else:
        safe_right = np.where(right_positive, right_counts, 1.0)
        right_losses = np.where(
            right_positive,
            np.maximum(
                right_subset_losses - (learning_rate / safe_right) * right_norms,
                0.0,
            ),
            right_subset_losses,
        )
    return reference_loss - left_losses - right_losses


class CandidateManager:
    """Bounded store of split-candidate statistics for one DMT node.

    Parameters
    ----------
    n_features:
        Number of input features ``m``.
    max_candidates:
        Maximum number of candidate statistics kept in memory.  The paper
        recommends ``3 · m``.
    replacement_rate:
        Fraction of the stored candidates that may be replaced by newly
        observed candidates at each time step (the paper recommends 0.5).
    max_values_per_feature:
        Cap on the number of distinct thresholds proposed per feature from a
        single batch.  If a batch contains more unique values, evenly spaced
        quantiles are used instead; this mirrors how practical incremental
        trees bound the candidate space for continuous features.
    vectorized:
        Whether batch updates and gain queries use the vectorized
        structure-of-arrays primitives (the default) or the per-candidate
        reference loops.  Both paths are bit-equivalent; the reference path
        exists for verification and benchmarking.
    """

    #: Pure caches skipped by the persistence encoder and rebuilt by
    #: :meth:`_init_transient` (which also migrates legacy payloads that
    #: stored a dict of :class:`CandidateStatistics`).
    _repro_transient = ("_key_index", "_candidate_counters")

    #: Class-level fallback so payloads written before the flag existed load.
    vectorized = True

    def __init__(
        self,
        n_features: int,
        max_candidates: int | None = None,
        replacement_rate: float = 0.5,
        max_values_per_feature: int = 10,
        vectorized: bool = True,
    ) -> None:
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}.")
        if not 0.0 <= replacement_rate <= 1.0:
            raise ValueError(
                f"replacement_rate must be in [0, 1], got {replacement_rate!r}."
            )
        if max_values_per_feature < 1:
            raise ValueError(
                "max_values_per_feature must be >= 1, "
                f"got {max_values_per_feature!r}."
            )
        self.n_features = int(n_features)
        self.max_candidates = (
            3 * self.n_features if max_candidates is None else int(max_candidates)
        )
        if self.max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1, got {self.max_candidates!r}."
            )
        self.replacement_rate = float(replacement_rate)
        self.max_values_per_feature = int(max_values_per_feature)
        self.vectorized = bool(vectorized)
        self._features = np.zeros(0, dtype=np.intp)
        self._thresholds = np.zeros(0, dtype=float)
        self._losses = np.zeros(0, dtype=float)
        self._counts = np.zeros(0, dtype=float)
        self._gradients = np.zeros((0, 0), dtype=float)
        self._init_transient()

    # -------------------------------------------------------------- decoding
    def _init_transient(self) -> None:
        """Rebuild the key index; migrate legacy dict-of-dataclass payloads."""
        #: Cached admitted/evicted counter handles, stamped with the metric
        #: registry generation they were resolved under (a registry
        #: ``clear()`` bumps the generation and invalidates them).
        #: Candidate updates are the most frequent instrumented site in DMT
        #: training, so the labelled registry lookup is hoisted out of the
        #: per-update path.  Instance state (not a module cache) so the
        #: kernel purity certification stays free of module-level writes.
        self._candidate_counters: dict = {"generation": -1}
        legacy = self.__dict__.pop("_candidates", None)
        if legacy is not None:
            stats = list(legacy.values())
            width = max((stat.gradient.size for stat in stats), default=0)
            self._features = np.array(
                [stat.feature for stat in stats], dtype=np.intp
            )
            self._thresholds = np.array(
                [stat.threshold for stat in stats], dtype=float
            )
            self._losses = np.array([stat.loss for stat in stats], dtype=float)
            self._counts = np.array([stat.count for stat in stats], dtype=float)
            gradients = np.zeros((len(stats), width))
            for row, stat in enumerate(stats):
                if stat.gradient.size:
                    gradients[row] = stat.gradient
            self._gradients = gradients
        self._rebuild_key_index()

    def _rebuild_key_index(self) -> None:
        """Re-establish the keys-mirror-arrays invariant after any mutation."""
        self._key_index = {
            (int(feature), float(threshold)): index
            for index, (feature, threshold) in enumerate(
                zip(self._features, self._thresholds)
            )
        }

    def _telemetry_counters(self):
        """Admitted/evicted counter handles, re-resolved per registry generation."""
        registry = TELEMETRY.registry
        cache = self._candidate_counters
        if cache.get("generation") != registry.generation:
            cache["admitted"] = registry.counter(
                "repro.dmt.candidates_admitted_total"
            )
            cache["evicted"] = registry.counter(
                "repro.dmt.candidates_evicted_total"
            )
            cache["generation"] = registry.generation
        return cache["admitted"], cache["evicted"]

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, key: tuple[int, float]) -> bool:
        return (int(key[0]), float(key[1])) in self._key_index

    @property
    def candidates(self) -> list[CandidateStatistics]:
        return [self._materialize(index) for index in range(len(self))]

    def get(self, key: tuple[int, float]) -> CandidateStatistics | None:
        index = self._key_index.get((int(key[0]), float(key[1])))
        return None if index is None else self._materialize(index)

    def clear(self) -> None:
        width = self._gradients.shape[1]
        self._features = np.zeros(0, dtype=np.intp)
        self._thresholds = np.zeros(0, dtype=float)
        self._losses = np.zeros(0, dtype=float)
        self._counts = np.zeros(0, dtype=float)
        self._gradients = np.zeros((0, width), dtype=float)
        self._rebuild_key_index()

    def _materialize(self, index: int) -> CandidateStatistics:
        """Per-candidate dataclass view of one row of the store (a copy)."""
        return CandidateStatistics(
            feature=int(self._features[index]),
            threshold=float(self._thresholds[index]),
            loss=float(self._losses[index]),
            gradient=self._gradients[index].copy(),
            count=float(self._counts[index]),
        )

    def _ensure_width(self, width: int) -> None:
        if self._gradients.shape[1] == width:
            return
        if len(self._features):
            raise ValueError(
                f"Gradient width changed from {self._gradients.shape[1]} to "
                f"{width} while candidates are stored."
            )
        self._gradients = np.zeros((0, width), dtype=float)

    # -------------------------------------------------------------- updates
    def propose_thresholds(self, X: np.ndarray) -> dict[int, np.ndarray]:
        """Candidate thresholds per feature observed in the current batch.

        The vectorized path batches all features through one sort and one
        quantile interpolation (:meth:`_propose_concat`); the reference path
        keeps the original per-feature ``np.unique``/``np.quantile`` calls.
        Both produce bit-identical threshold values.
        """
        X = np.asarray(X, dtype=float)
        if self.vectorized:
            features, thresholds = self._propose_concat(X)
            boundaries = np.searchsorted(
                features, np.arange(self.n_features + 1)
            )
            return {
                feature: thresholds[boundaries[feature] : boundaries[feature + 1]]
                for feature in range(self.n_features)
            }
        proposals: dict[int, np.ndarray] = {}
        quantiles: np.ndarray | None = None
        for feature in range(self.n_features):
            values = np.unique(X[:, feature])
            if len(values) > self.max_values_per_feature:
                if quantiles is None:
                    quantiles = np.linspace(
                        0.0, 1.0, self.max_values_per_feature + 2
                    )[1:-1]
                values = np.unique(np.quantile(values, quantiles))
            proposals[feature] = values
        return proposals

    def _propose_concat(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All proposed ``(feature, threshold)`` pairs of a batch at once.

        Returns ``(features, thresholds)`` in proposal order (feature
        ascending, thresholds ascending within a feature).  Bit-identical to
        the per-feature ``np.unique``/``np.quantile`` reference: one shared
        column sort replaces the per-feature sorts, consecutive-duplicate
        masks replace ``np.unique``, and numpy's ``linear`` quantile method
        (virtual index ``q * (n - 1)``, two-sided lerp switching to
        ``b - diff * (1 - gamma)`` at ``gamma >= 0.5``) is replicated as one
        batched interpolation over every capped feature.
        """
        n_rows, n_features = X.shape
        sorted_columns = np.sort(X, axis=0)
        keep = np.empty((n_rows, n_features), dtype=bool)
        keep[:1] = True
        np.not_equal(sorted_columns[1:], sorted_columns[:-1], out=keep[1:])
        counts = keep.sum(axis=0)
        # Per-feature unique values, concatenated feature-contiguously.
        flat = sorted_columns.T[keep.T]
        offsets = np.concatenate(([0], np.cumsum(counts)))
        capped = np.flatnonzero(counts > self.max_values_per_feature)
        if not len(capped):
            features = np.repeat(
                np.arange(n_features, dtype=np.intp), counts
            )
            return features, flat
        quantiles = np.linspace(0.0, 1.0, self.max_values_per_feature + 2)[1:-1]
        virtual = quantiles[None, :] * (counts[capped, None] - 1)
        previous = np.floor(virtual)
        gamma = virtual - previous
        base = offsets[capped][:, None]
        low = flat[base + previous.astype(np.intp)]
        high = flat[base + np.ceil(virtual).astype(np.intp)]
        diff = high - low
        interpolated = low + diff * gamma
        upper = gamma >= 0.5
        interpolated[upper] = high[upper] - diff[upper] * (1.0 - gamma[upper])
        keep_quantiles = np.empty_like(interpolated, dtype=bool)
        keep_quantiles[:, :1] = True
        np.not_equal(
            interpolated[:, 1:], interpolated[:, :-1], out=keep_quantiles[:, 1:]
        )
        pieces: list[np.ndarray] = []
        final_counts = np.empty(n_features, dtype=np.intp)
        capped_row = {int(feature): row for row, feature in enumerate(capped)}
        for feature in range(n_features):
            row = capped_row.get(feature)
            if row is None:
                values = flat[offsets[feature] : offsets[feature + 1]]
            else:
                values = interpolated[row][keep_quantiles[row]]
            pieces.append(values)
            final_counts[feature] = len(values)
        features = np.repeat(np.arange(n_features, dtype=np.intp), final_counts)
        return features, np.concatenate(pieces)

    def update_stored(
        self,
        X: np.ndarray,
        per_sample_loss: np.ndarray,
        per_sample_gradient: np.ndarray,
        augmented: np.ndarray | None = None,
    ) -> None:
        """Accumulate the current batch into every stored candidate.

        ``augmented`` optionally supplies a precomputed
        :func:`augment_batch` matrix so one batch can feed both this method
        and :meth:`consider_new` with a single construction.
        """
        if not len(self._features):
            return
        X = np.asarray(X, dtype=float)
        per_sample_loss = np.asarray(per_sample_loss, dtype=float)
        per_sample_gradient = np.asarray(per_sample_gradient, dtype=float)
        self._ensure_width(per_sample_gradient.shape[1])
        if augmented is None:
            augmented = augment_batch(per_sample_loss, per_sample_gradient)
        if self.vectorized:
            masks = X[:, self._features] <= self._thresholds
            sums = np.einsum("nk,np->kp", masks.astype(float), augmented)
            self._gradients += sums[:, :-1]
            self._losses += sums[:, -1]
            self._counts += masks.sum(axis=0)
        else:
            self._update_stored_per_candidate(X, augmented)

    def _update_stored_per_candidate(
        self, X: np.ndarray, augmented: np.ndarray
    ) -> None:
        """Reference implementation: one Python-loop mask per candidate."""
        for index in range(len(self._features)):
            mask = X[:, self._features[index]] <= self._thresholds[index]
            if not np.any(mask):
                continue
            sums = augmented[mask].sum(axis=0)
            self._losses[index] += sums[-1]
            self._gradients[index] += sums[:-1]
            self._counts[index] += mask.sum()

    def consider_new(
        self,
        X: np.ndarray,
        per_sample_loss: np.ndarray,
        per_sample_gradient: np.ndarray,
        node_loss: float,
        node_gradient: np.ndarray,
        node_count: float,
        learning_rate: float,
        reference_loss: float | None = None,
        augmented: np.ndarray | None = None,
    ) -> None:
        """Propose new candidates from the current batch and admit the best.

        New candidates are scored on the current batch only (their statistics
        start from this batch, as described in Section V-D).  They fill free
        slots first; once the store is full, a newcomer only evicts the
        weakest stored candidate when its batch gain exceeds the gain that
        candidate has accumulated so far, bounded by the replacement budget.
        """
        X = np.asarray(X, dtype=float)
        per_sample_loss = np.asarray(per_sample_loss, dtype=float)
        per_sample_gradient = np.asarray(per_sample_gradient, dtype=float)
        self._ensure_width(per_sample_gradient.shape[1])
        if augmented is None:
            augmented = augment_batch(per_sample_loss, per_sample_gradient)
        batch_loss = float(per_sample_loss.sum())
        batch_gradient = per_sample_gradient.sum(axis=0)
        batch_count = float(len(per_sample_loss))

        fresh = self._propose_fresh(X, augmented)
        if fresh is None:
            return
        fresh_features, fresh_thresholds, fresh_losses, fresh_gradients, fresh_counts = fresh

        if self.vectorized:
            fresh_gains = candidate_gain_sweep(
                fresh_losses,
                fresh_gradients,
                fresh_counts,
                node_loss=batch_loss,
                node_gradient=batch_gradient,
                node_count=batch_count,
                learning_rate=learning_rate,
                assume_counts_positive=True,
            )
        else:
            fresh_gains = np.array(
                [
                    CandidateStatistics(
                        feature=int(fresh_features[index]),
                        threshold=float(fresh_thresholds[index]),
                        loss=float(fresh_losses[index]),
                        gradient=fresh_gradients[index],
                        count=float(fresh_counts[index]),
                    ).gain(
                        node_loss=batch_loss,
                        node_gradient=batch_gradient,
                        node_count=batch_count,
                        learning_rate=learning_rate,
                    )
                    for index in range(len(fresh_features))
                ]
            )

        # Stable descending order == the stable Python sort it replaces:
        # ties keep proposal order (feature, then threshold ascending).
        order = np.argsort(-fresh_gains, kind="stable")
        free_slots = max(self.max_candidates - len(self._features), 0)
        admitted = list(order[:free_slots])
        remaining = order[free_slots:]

        evicted: list[int] = []
        if len(remaining):
            budget = int(np.floor(self.replacement_rate * self.max_candidates))
            if budget > 0 and len(self._features):
                stored_gains = self._stored_gains(
                    node_loss, node_gradient, node_count, learning_rate,
                    reference_loss,
                )
                stored_order = np.argsort(stored_gains, kind="stable")
                for newcomer, weakest in zip(remaining, stored_order):
                    if len(evicted) >= budget:
                        break
                    if fresh_gains[newcomer] <= stored_gains[weakest]:
                        # Stored gains ascend while newcomer gains descend
                        # from here on, so no later pair can qualify either.
                        break
                    evicted.append(int(weakest))
                    admitted.append(newcomer)

        if evicted:
            keep = np.ones(len(self._features), dtype=bool)
            keep[evicted] = False
            self._features = self._features[keep]
            self._thresholds = self._thresholds[keep]
            self._losses = self._losses[keep]
            self._counts = self._counts[keep]
            self._gradients = self._gradients[keep]
        if admitted:
            self._features = np.concatenate(
                [self._features, fresh_features[admitted]]
            )
            self._thresholds = np.concatenate(
                [self._thresholds, fresh_thresholds[admitted]]
            )
            self._losses = np.concatenate([self._losses, fresh_losses[admitted]])
            self._counts = np.concatenate([self._counts, fresh_counts[admitted]])
            self._gradients = np.concatenate(
                [self._gradients, fresh_gradients[admitted]], axis=0
            )
        if evicted or admitted:
            self._rebuild_key_index()
            if TELEMETRY.enabled:
                TELEMETRY.emit(
                    DMT_CANDIDATES,
                    n_admitted=len(admitted),
                    n_evicted=len(evicted),
                    n_stored=len(self._features),
                )
                admitted_total, evicted_total = self._telemetry_counters()
                admitted_total.inc(len(admitted))
                if evicted:
                    evicted_total.inc(len(evicted))

    def _propose_fresh(self, X: np.ndarray, augmented: np.ndarray):
        """Statistics of the batch's informative, not-yet-stored candidates.

        Returns ``None`` when the batch proposes nothing new, otherwise the
        tuple ``(features, thresholds, losses, gradients, counts)`` in
        proposal order (feature ascending, threshold ascending).
        """
        if self.vectorized:
            fresh_features, fresh_thresholds = self._propose_concat(X)
            if len(self._features):
                # Drop proposals already stored: exact (feature, threshold)
                # matches, the same comparison the key-dict lookup performs.
                duplicate = (
                    (fresh_features[:, None] == self._features)
                    & (fresh_thresholds[:, None] == self._thresholds)
                ).any(axis=1)
                if duplicate.any():
                    fresh_features = fresh_features[~duplicate]
                    fresh_thresholds = fresh_thresholds[~duplicate]
        else:
            features: list[int] = []
            thresholds: list[float] = []
            for feature, values in self.propose_thresholds(X).items():
                for value in values:
                    if (feature, float(value)) in self._key_index:
                        continue
                    features.append(feature)
                    thresholds.append(float(value))
            fresh_features = np.array(features, dtype=np.intp)
            fresh_thresholds = np.array(thresholds, dtype=float)
        if not len(fresh_features):
            return None
        masks = X[:, fresh_features] <= fresh_thresholds
        counts = masks.sum(axis=0)
        # A candidate that does not separate the batch carries no
        # information yet.
        informative = (counts > 0) & (counts < len(X))
        if not np.any(informative):
            return None
        fresh_features = fresh_features[informative]
        fresh_thresholds = fresh_thresholds[informative]
        masks = masks[:, informative]
        counts = counts[informative]
        if self.vectorized:
            sums = np.einsum("nk,np->kp", masks.astype(float), augmented)
            gradients = sums[:, :-1]
            losses = sums[:, -1]
        else:
            losses = np.zeros(len(fresh_features))
            gradients = np.zeros((len(fresh_features), augmented.shape[1] - 1))
            for index in range(len(fresh_features)):
                sums = augmented[masks[:, index]].sum(axis=0)
                losses[index] = sums[-1]
                gradients[index] = sums[:-1]
        return (
            fresh_features,
            fresh_thresholds,
            losses,
            gradients,
            counts.astype(float),
        )

    def _stored_gains(
        self,
        node_loss: float,
        node_gradient: np.ndarray,
        node_count: float,
        learning_rate: float,
        reference_loss: float | None,
    ) -> np.ndarray:
        """Gains of every stored candidate (vectorized sweep or reference)."""
        if self.vectorized:
            return candidate_gain_sweep(
                self._losses,
                self._gradients,
                self._counts,
                node_loss=node_loss,
                node_gradient=node_gradient,
                node_count=node_count,
                learning_rate=learning_rate,
                reference_loss=reference_loss,
                assume_counts_positive=True,
            )
        return np.array(
            [
                self._materialize(index).gain(
                    node_loss=node_loss,
                    node_gradient=node_gradient,
                    node_count=node_count,
                    learning_rate=learning_rate,
                    reference_loss=reference_loss,
                )
                for index in range(len(self._features))
            ]
        )

    # ---------------------------------------------------------------- query
    def best_candidate(
        self,
        node_loss: float,
        node_gradient: np.ndarray,
        node_count: float,
        learning_rate: float,
        reference_loss: float | None = None,
        exclude: tuple[int, float] | None = None,
    ) -> tuple[CandidateStatistics | None, float]:
        """Return the stored candidate with the highest gain and its gain.

        Ties keep the first-inserted candidate, matching the strict ``>``
        comparison of the per-candidate reference loop.
        """
        if not len(self._features):
            return None, -np.inf
        gains = self._stored_gains(
            node_loss, node_gradient, node_count, learning_rate, reference_loss
        )
        if exclude is not None:
            index = self._key_index.get((int(exclude[0]), float(exclude[1])))
            if index is not None:
                if len(self._features) == 1:
                    return None, -np.inf
                gains[index] = -np.inf
        best = int(np.argmax(gains))
        if np.isnan(gains[best]):
            # argmax lands on a NaN whenever one exists; NaN never beats a
            # finite gain in the scalar reference, so retry with NaNs masked.
            gains = np.where(np.isnan(gains), -np.inf, gains)
            best = int(np.argmax(gains))
        if gains[best] == -np.inf:
            return None, -np.inf
        return self._materialize(best), float(gains[best])
