"""Online credit scoring with interpretable model updates.

The paper motivates the Dynamic Model Tree with high-stakes applications such
as credit scoring, where (i) the data arrives as a stream, (ii) customer
behaviour drifts over time, and (iii) every model update must remain
explainable (GDPR-style accountability).

This example simulates a credit-scoring stream with the Bank-marketing
surrogate (strongly imbalanced, 16 features), injects an abrupt "policy
change" drift half-way through, and shows how the DMT

* maintains a high F1 score through the drift,
* keeps its structure small, and
* exposes the per-segment linear scorecards (feature weights) that a risk
  officer could audit after every update.

Run with::

    python examples/credit_scoring_stream.py
"""

from __future__ import annotations

import numpy as np

from repro import DynamicModelTree
from repro.evaluation.metrics import ConfusionMatrix
from repro.streams.realworld import make_surrogate


FEATURE_NAMES = [
    "age", "job_code", "marital_code", "education_code", "in_default",
    "balance", "has_housing_loan", "has_personal_loan", "contact_code",
    "last_contact_day", "last_contact_month", "contact_duration",
    "n_contacts_campaign", "days_since_prev_campaign", "n_prev_contacts",
    "prev_outcome_code",
]


def main() -> None:
    stream = make_surrogate("bank", scale=0.2, seed=7)
    classes = stream.classes
    model = DynamicModelTree(learning_rate=0.05, epsilon=1e-8, random_state=7)

    batch_size = max(stream.n_samples // 500, 1)
    confusion = ConfusionMatrix(classes)
    drift_at = stream.n_samples // 2
    f1_before_drift, f1_after_drift = [], []

    print("=== Streaming credit scoring (Bank-marketing surrogate) ===")
    print(f"{stream.n_samples} applications, {stream.n_features} features, "
          f"classes = {classes.tolist()} (1 = subscribes / repays)")

    iteration = 0
    while stream.has_more_samples():
        X, y = stream.next_sample(batch_size)
        # Simulated policy change: after the drift point the bank's customers
        # behave differently on a subset of features.
        if stream.position > drift_at:
            X = X.copy()
            X[:, :4] = 1.0 - X[:, :4]

        if iteration > 0:
            predictions = model.predict(X)
            batch_confusion = ConfusionMatrix(classes)
            batch_confusion.update(y, predictions)
            confusion.update(y, predictions)
            target = f1_after_drift if stream.position > drift_at else f1_before_drift
            target.append(batch_confusion.f1("macro"))
        model.partial_fit(X, y, classes=classes)
        iteration += 1

    report = model.complexity()
    print(f"\noverall prequential F1 (macro): {confusion.f1('macro'):.3f}")
    print(f"F1 before policy change:        {np.mean(f1_before_drift):.3f}")
    print(f"F1 after policy change:         {np.mean(f1_after_drift):.3f}")
    print(f"final tree: {report.n_leaves} customer segments, "
          f"{report.n_splits} splits, depth {report.depth}")

    print("\nAuditable scorecard per customer segment:")
    for index, leaf in enumerate(model.leaf_feature_weights()):
        conditions = " AND ".join(leaf["path"]) if leaf["path"] else "all applicants"
        weights = leaf["weights"][0]
        top = np.argsort(-np.abs(weights))[:3]
        drivers = ", ".join(
            f"{FEATURE_NAMES[f]} ({weights[f]:+.2f})" for f in top
        )
        print(f"  segment {index}: {conditions}")
        print(f"     main drivers: {drivers}")

    print(
        "\nEvery split or prune of the DMT corresponds to a measured change in "
        "the negative log-likelihood, so each of the segments above can be "
        "traced back to a concrete change in the data -- the online "
        "interpretability property the paper argues for."
    )


if __name__ == "__main__":
    main()
