"""The Dynamic Model Tree -- the paper's primary contribution."""

from repro.core.dmt import DynamicModelTree
from repro.core.gains import (
    aic_prune_threshold,
    aic_resplit_threshold,
    aic_split_threshold,
    approximate_candidate_loss,
)
from repro.core.losses import negative_log_likelihood, akaike_information_criterion

__all__ = [
    "DynamicModelTree",
    "approximate_candidate_loss",
    "aic_split_threshold",
    "aic_resplit_threshold",
    "aic_prune_threshold",
    "negative_log_likelihood",
    "akaike_information_criterion",
]
