"""Small shared utilities (validation, random state handling)."""

from repro.utils.validation import (
    check_features,
    check_labels,
    check_random_state,
    check_positive,
    check_in_range,
)

__all__ = [
    "check_features",
    "check_labels",
    "check_random_state",
    "check_positive",
    "check_in_range",
]
