"""Tests for the Dynamic Model Tree classifier."""

import numpy as np
import pytest

from repro.base import ComplexityReport
from repro.core.dmt import DynamicModelTree
from repro.streams.synthetic import SEAGenerator, SineGenerator
from tests.conftest import make_linear_binary, make_multiclass_blobs, make_xor


def _stream_fit(model, X, y, classes, batch=50):
    for start in range(0, len(X), batch):
        model.partial_fit(X[start : start + batch], y[start : start + batch], classes=classes)
    return model


class TestConstruction:
    def test_invalid_hyperparameters_raise(self):
        with pytest.raises(ValueError):
            DynamicModelTree(learning_rate=0.0)
        with pytest.raises(ValueError):
            DynamicModelTree(epsilon=0.0)
        with pytest.raises(ValueError):
            DynamicModelTree(epsilon=1.5)
        with pytest.raises(ValueError):
            DynamicModelTree(n_candidates_factor=0)
        with pytest.raises(ValueError):
            DynamicModelTree(replacement_rate=1.2)
        with pytest.raises(ValueError):
            DynamicModelTree(max_depth=0)

    def test_paper_defaults(self):
        model = DynamicModelTree()
        assert model.learning_rate == pytest.approx(0.05)
        assert model.epsilon == pytest.approx(1e-8)
        assert model.n_candidates_factor == 3
        assert model.replacement_rate == pytest.approx(0.5)

    def test_empty_model_complexity(self):
        report = DynamicModelTree().complexity()
        assert report.n_splits == 0
        assert report.n_parameters == 0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DynamicModelTree().predict_proba(np.zeros((1, 2)))


class TestLearning:
    def test_learns_linear_concept_without_splitting_much(self):
        """A linearly separable concept is exactly what a single GLM leaf can
        represent; the DMT should stay very small (model minimality)."""
        X, y = make_linear_binary(3000, n_features=4, seed=0)
        model = DynamicModelTree(random_state=0)
        _stream_fit(model, X, y, classes=[0, 1])
        accuracy = np.mean(model.predict(X[-500:]) == y[-500:])
        assert accuracy > 0.85
        assert model.n_nodes <= 7

    def test_learns_xor_by_splitting(self):
        """XOR cannot be represented by one linear model: the DMT must split.

        The loss-based gains accumulate over time, so a conservative AIC
        threshold (ε = 1e-8) needs a reasonable number of observations before
        the split is warranted; features are scaled up here so the gradient
        signal (and hence the gain) accumulates within a short test stream.
        """
        X, y = make_xor(10_000, seed=1)
        X = X * 3.0
        model = DynamicModelTree(random_state=1)
        _stream_fit(model, X, y, classes=[0, 1])
        accuracy = np.mean(model.predict(X[-2000:]) == y[-2000:])
        assert model.n_nodes > 1
        assert accuracy > 0.6

    def test_learns_multiclass_blobs(self):
        X, y = make_multiclass_blobs(3000, n_classes=3, n_features=4, seed=2)
        model = DynamicModelTree(random_state=2)
        _stream_fit(model, X, y, classes=[0, 1, 2])
        accuracy = np.mean(model.predict(X[-500:]) == y[-500:])
        assert accuracy > 0.8

    def test_predict_proba_is_distribution(self):
        X, y = make_linear_binary(500, n_features=3, seed=3)
        model = DynamicModelTree(random_state=3)
        _stream_fit(model, X, y, classes=[0, 1])
        proba = model.predict_proba(X[:20])
        assert proba.shape == (20, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(proba >= 0)

    def test_per_row_proba_with_one_observed_class(self):
        """Regression: the per-row baseline mis-sliced probabilities whenever
        the leaf GLM carries more classes than the tree has observed (a binary
        GLM is created even when only one class label has been seen)."""
        rng = np.random.default_rng(11)
        X = rng.uniform(size=(120, 3))
        y = np.zeros(120, dtype=int)
        model = DynamicModelTree(random_state=11)
        model.partial_fit(X, y)
        assert model.n_classes_ == 1
        assert model.root.model.n_classes == 2
        per_row = model._predict_proba_per_row(X[:15])
        vectorized = model.predict_proba(X[:15])
        np.testing.assert_allclose(per_row, vectorized, rtol=0.0, atol=1e-12)
        np.testing.assert_allclose(per_row.sum(axis=1), 1.0)

    def test_new_class_after_initialisation_raises(self):
        X, y = make_linear_binary(100, n_features=3)
        model = DynamicModelTree(random_state=0)
        model.partial_fit(X, y, classes=[0, 1])
        with pytest.raises(ValueError, match="class"):
            model.partial_fit(X[:10], np.full(10, 2))

    def test_max_depth_limits_growth(self):
        X, y = make_xor(3000, seed=4)
        model = DynamicModelTree(random_state=4, max_depth=1)
        _stream_fit(model, X, y, classes=[0, 1])
        assert model.depth <= 1

    def test_reset_clears_tree(self):
        X, y = make_linear_binary(200, n_features=3)
        model = DynamicModelTree(random_state=0)
        model.partial_fit(X, y, classes=[0, 1])
        model.reset()
        assert model.root is None
        assert model.classes_ is None

    def test_reproducible_with_same_seed(self):
        X, y = make_xor(1500, seed=5)
        first = _stream_fit(DynamicModelTree(random_state=7), X, y, [0, 1])
        second = _stream_fit(DynamicModelTree(random_state=7), X, y, [0, 1])
        np.testing.assert_array_equal(first.predict(X[:100]), second.predict(X[:100]))
        assert first.n_nodes == second.n_nodes


class TestProperties:
    def test_splits_only_with_sufficient_gain(self):
        """Consistency (Property 1 + AIC threshold): right after any split the
        winning candidate's gain must have exceeded the split threshold, which
        is strictly positive, so a split can never have increased the
        estimated loss."""
        X, y = make_xor(4000, seed=6)
        model = DynamicModelTree(random_state=6)
        threshold_floor = 0.0
        _stream_fit(model, X, y, classes=[0, 1])
        if model.root is not None and not model.root.is_leaf:
            assert model.root.leaf_split_threshold(model.epsilon) > threshold_floor

    def test_minimality_prunes_obsolete_subtree_after_drift(self):
        """After abrupt real drift to a linearly separable concept, subtrees
        grown for the old concept stop paying for themselves and model
        minimality should shrink the tree again (or at least not let it grow)."""
        X1, y1 = make_xor(5000, seed=7)
        model = DynamicModelTree(random_state=7)
        _stream_fit(model, X1, y1, classes=[0, 1])
        size_before = model.n_nodes
        # New concept: depends only on feature 0, representable by one GLM.
        rng = np.random.default_rng(8)
        X2 = rng.uniform(size=(6000, 2))
        y2 = (X2[:, 0] > 0.5).astype(int)
        _stream_fit(model, X2, y2, classes=[0, 1])
        accuracy = np.mean(model.predict(X2[-500:]) == y2[-500:])
        assert accuracy > 0.85
        assert model.n_nodes <= max(size_before, 3)

    def test_adapts_to_abrupt_label_flip(self):
        """Real concept drift (label flip) must be absorbed without an
        external drift detector."""
        rng = np.random.default_rng(9)
        X = rng.uniform(size=(8000, 3))
        weights = np.array([1.0, 1.0, 1.0])
        y_first = (X @ weights > 1.5).astype(int)
        model = DynamicModelTree(random_state=9)
        _stream_fit(model, X[:4000], y_first[:4000], classes=[0, 1])
        y_flipped = 1 - y_first
        _stream_fit(model, X[4000:], y_flipped[4000:], classes=[0, 1])
        accuracy = np.mean(model.predict(X[-500:]) == y_flipped[-500:])
        assert accuracy > 0.8


class TestComplexityAccounting:
    def test_single_leaf_binary_counts(self):
        X, y = make_linear_binary(100, n_features=5, seed=1)
        model = DynamicModelTree(random_state=1)
        model.partial_fit(X, y, classes=[0, 1])
        if model.n_nodes == 1:
            report = model.complexity()
            # One linear leaf: 1 split (binary classifier), m parameters.
            assert report.n_splits == 1
            assert report.n_parameters == 5

    def test_multiclass_leaf_counts_scale_with_classes(self):
        X, y = make_multiclass_blobs(150, n_classes=3, n_features=4, seed=1)
        model = DynamicModelTree(random_state=1)
        model.partial_fit(X, y, classes=[0, 1, 2])
        if model.n_nodes == 1:
            report = model.complexity()
            assert report.n_splits == 3
            assert report.n_parameters == 12

    def test_complexity_consistent_with_structure(self):
        X, y = make_xor(4000, seed=10)
        model = DynamicModelTree(random_state=10)
        _stream_fit(model, X, y, classes=[0, 1])
        report = model.complexity()
        n_leaves = model.n_leaves
        n_inner = model.n_nodes - n_leaves
        assert report.n_splits == n_inner + n_leaves  # binary: 1 extra per leaf
        assert report.n_parameters == n_inner + 2 * n_leaves  # m = 2
        assert isinstance(report, ComplexityReport)


class TestInterpretability:
    def test_leaf_feature_weights_exposes_paths_and_weights(self):
        X, y = make_xor(3000, seed=11)
        model = DynamicModelTree(random_state=11)
        _stream_fit(model, X, y, classes=[0, 1])
        explanations = model.leaf_feature_weights()
        assert len(explanations) == model.n_leaves
        for entry in explanations:
            assert "path" in entry and "weights" in entry
            assert entry["weights"].shape[1] == 2

    def test_empty_model_has_no_explanations(self):
        assert DynamicModelTree().leaf_feature_weights() == []


class TestOnStreams:
    def test_beats_majority_on_sea(self):
        stream = SEAGenerator(n_samples=4000, noise=0.1, seed=1)
        X, y = stream.take()
        model = DynamicModelTree(random_state=1)
        _stream_fit(model, X[:3000], y[:3000], classes=[0, 1], batch=40)
        accuracy = np.mean(model.predict(X[3000:]) == y[3000:])
        majority = max(np.mean(y[3000:]), 1 - np.mean(y[3000:]))
        assert accuracy > majority

    def test_handles_sine_drift(self):
        stream = SineGenerator(
            n_samples=6000, classification_function=0, drift_positions=(0.5,), seed=2
        )
        X, y = stream.take()
        model = DynamicModelTree(random_state=2)
        _stream_fit(model, X, y, classes=[0, 1], batch=40)
        accuracy = np.mean(model.predict(X[-600:]) == y[-600:])
        assert accuracy > 0.6
