"""Tests for the validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_features,
    check_in_range,
    check_labels,
    check_positive,
    check_random_state,
)


class TestCheckFeatures:
    def test_promotes_1d_to_row(self):
        X = check_features(np.array([1.0, 2.0, 3.0]))
        assert X.shape == (1, 3)

    def test_accepts_lists(self):
        X = check_features([[1, 2], [3, 4]])
        assert X.dtype == float
        assert X.shape == (2, 2)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_features(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_features(np.zeros((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_features(np.array([[1.0, np.nan]]))

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_features(np.array([[1.0, np.inf]]))


class TestCheckLabels:
    def test_scalar_becomes_vector(self):
        y = check_labels(np.array(3))
        assert y.shape == (1,)

    def test_float_integer_labels_are_cast(self):
        y = check_labels(np.array([0.0, 1.0, 2.0]))
        assert y.dtype.kind == "i"

    def test_rejects_fractional_labels(self):
        with pytest.raises(ValueError, match="integer-coded"):
            check_labels(np.array([0.5, 1.0]))

    def test_rejects_nan_labels(self):
        with pytest.raises(ValueError, match="NaN"):
            check_labels(np.array([np.nan, 1.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_labels(np.zeros((2, 2)))


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_seed_is_reproducible(self):
        first = check_random_state(5).random(3)
        second = check_random_state(5).random(3)
        np.testing.assert_allclose(first, second)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert check_random_state(generator) is generator

    def test_invalid_seed_raises(self):
        with pytest.raises(ValueError):
            check_random_state("not-a-seed")


class TestRangeChecks:
    def test_check_positive_accepts_positive(self):
        assert check_positive(0.1, "x") == 0.1

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive(0.0, "x")

    def test_check_in_range_inclusive(self):
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_check_in_range_exclusive_rejects_bound(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 0.0, 1.0, inclusive=False)

    def test_check_in_range_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(2.0, "x", 0.0, 1.0)
