"""Loss functions and information criteria used by the Dynamic Model Tree.

The DMT links every structural change of the tree to a change in the
empirical negative log-likelihood (Section V-B), and derives robust update
thresholds from the Akaike Information Criterion (Section V-C).
"""

from __future__ import annotations

import numpy as np

_PROBA_EPS = 1e-12


def negative_log_likelihood(proba: np.ndarray, y: np.ndarray) -> float:
    """Total negative log-likelihood of labels ``y`` under probabilities ``proba``.

    Parameters
    ----------
    proba:
        Array of shape ``(n, c)`` with class probabilities per sample.
    y:
        Integer class indices of shape ``(n,)`` referring to columns of
        ``proba``.
    """
    proba = np.asarray(proba, dtype=float)
    y = np.asarray(y, dtype=int)
    if proba.ndim != 2:
        raise ValueError(f"proba must be 2-dimensional, got shape {proba.shape}.")
    if len(proba) != len(y):
        raise ValueError("proba and y have inconsistent lengths.")
    chosen = np.clip(proba[np.arange(len(y)), y], _PROBA_EPS, 1.0)
    return float(-np.sum(np.log(chosen)))


def per_sample_negative_log_likelihood(
    proba: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Per-sample negative log-likelihood, shape ``(n,)``."""
    proba = np.asarray(proba, dtype=float)
    y = np.asarray(y, dtype=int)
    chosen = np.clip(proba[np.arange(len(y)), y], _PROBA_EPS, 1.0)
    return -np.log(chosen)


def akaike_information_criterion(log_likelihood: float, n_parameters: int) -> float:
    """AIC of a model: ``2 k - 2 ℓ(Θ)`` (equation (8) of the paper)."""
    return 2.0 * n_parameters - 2.0 * log_likelihood


def relative_aic_likelihood(aic_candidate: float, aic_reference: float) -> float:
    """Relative probability that the reference model minimises information loss.

    ``exp((AIC_candidate - AIC_reference) / 2)`` is proportional to the
    probability that the *reference* model (the one with the larger AIC in the
    paper's test) actually minimises the estimated information loss.  The DMT
    requires this quantity to drop below a user threshold ``ε`` before it
    commits to a structural change.
    """
    return float(np.exp((aic_candidate - aic_reference) / 2.0))
