"""Tests for the adaptive tree baselines: HT-Ada (HAT) and EFDT."""

import numpy as np
import pytest

from repro.streams.synthetic import SEAGenerator
from repro.trees.efdt import ExtremelyFastDecisionTreeClassifier
from repro.trees.hat import HoeffdingAdaptiveTreeClassifier
from repro.trees.vfdt import HoeffdingTreeClassifier
from tests.conftest import make_multiclass_blobs, make_xor


def _stream_fit(model, X, y, classes, batch=100):
    for start in range(0, len(X), batch):
        model.partial_fit(X[start : start + batch], y[start : start + batch], classes=classes)
    return model


def _abrupt_flip_stream(n=12_000, seed=0):
    """Separable concept whose labels flip half-way through the stream."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 3))
    y = (X[:, 0] > 0.5).astype(int)
    y[n // 2 :] = 1 - y[n // 2 :]
    return X, y


class TestHoeffdingAdaptiveTree:
    def test_learns_stationary_concept(self):
        X, y = make_multiclass_blobs(6000, n_classes=3, n_features=4, seed=0)
        model = _stream_fit(
            HoeffdingAdaptiveTreeClassifier(grace_period=100, split_confidence=1e-3),
            X, y, [0, 1, 2],
        )
        accuracy = np.mean(model.predict(X[-500:]) == y[-500:])
        assert accuracy > 0.85

    def test_recovers_from_abrupt_drift(self):
        X, y = _abrupt_flip_stream(seed=1)
        model = HoeffdingAdaptiveTreeClassifier(grace_period=100)
        _stream_fit(model, X, y, [0, 1], batch=100)
        accuracy_after = np.mean(model.predict(X[-1000:]) == y[-1000:])
        assert accuracy_after > 0.7

    def test_drift_machinery_engages_on_drift(self):
        X, y = _abrupt_flip_stream(seed=2)
        model = HoeffdingAdaptiveTreeClassifier(grace_period=100)
        _stream_fit(model, X, y, [0, 1], batch=100)
        assert model.n_alternate_trees + model.n_tree_swaps >= 0
        # The tree must at least have detected the change somewhere.
        assert model.n_alternate_trees >= 1 or model.n_nodes <= 3

    def test_complexity_excludes_alternate_trees(self):
        X, y = _abrupt_flip_stream(seed=3)
        model = HoeffdingAdaptiveTreeClassifier(grace_period=100)
        _stream_fit(model, X, y, [0, 1], batch=100)
        report = model.complexity()
        main_nodes = len(model._main_tree_nodes())
        assert report.n_nodes == main_nodes

    def test_reset(self):
        X, y = make_xor(1000)
        model = _stream_fit(HoeffdingAdaptiveTreeClassifier(), X, y, [0, 1])
        model.reset()
        assert model.root is None
        assert model.n_alternate_trees == 0


class TestEFDT:
    def test_invalid_reevaluation_period(self):
        with pytest.raises(ValueError):
            ExtremelyFastDecisionTreeClassifier(reevaluation_period=0)

    def test_learns_stationary_concept(self):
        X, y = make_multiclass_blobs(4000, n_classes=3, n_features=4, seed=4)
        model = _stream_fit(
            ExtremelyFastDecisionTreeClassifier(grace_period=100), X, y, [0, 1, 2]
        )
        accuracy = np.mean(model.predict(X[-500:]) == y[-500:])
        assert accuracy > 0.8

    def test_splits_earlier_than_vfdt(self):
        """EFDT splits against the null hypothesis, so it commits to its first
        split with fewer observations than the VFDT."""
        stream = SEAGenerator(n_samples=6000, noise=0.0, seed=5)
        X, y = stream.take()
        X = X / 10.0
        efdt = ExtremelyFastDecisionTreeClassifier(grace_period=100)
        vfdt = HoeffdingTreeClassifier(grace_period=100)
        efdt_first, vfdt_first = None, None
        for start in range(0, len(X), 100):
            batch = slice(start, start + 100)
            efdt.partial_fit(X[batch], y[batch], classes=[0, 1])
            vfdt.partial_fit(X[batch], y[batch], classes=[0, 1])
            if efdt_first is None and efdt.n_split_events > 0:
                efdt_first = start
            if vfdt_first is None and vfdt.n_split_events > 0:
                vfdt_first = start
        assert efdt_first is not None
        if vfdt_first is not None:
            assert efdt_first <= vfdt_first

    def test_reevaluation_can_prune_after_drift(self):
        """After real drift the split attribute becomes stale; EFDT's
        re-evaluation should restructure (prune or re-split) the tree."""
        rng = np.random.default_rng(6)
        n = 16_000
        X = rng.uniform(size=(n, 4))
        y = np.empty(n, dtype=int)
        half = n // 2
        y[:half] = (X[:half, 0] > 0.5).astype(int)
        y[half:] = (X[half:, 1] > 0.5).astype(int)
        model = ExtremelyFastDecisionTreeClassifier(
            grace_period=100, reevaluation_period=500
        )
        _stream_fit(model, X, y, [0, 1], batch=100)
        assert model.n_reevaluations > 0
        accuracy = np.mean(model.predict(X[-1000:]) == y[-1000:])
        assert accuracy > 0.7

    def test_counts_exclude_stats_holders(self):
        X, y = make_multiclass_blobs(5000, n_classes=2, n_features=3, seed=7)
        model = _stream_fit(
            ExtremelyFastDecisionTreeClassifier(grace_period=100), X, y, [0, 1]
        )
        report = model.complexity()
        assert report.n_nodes == report.n_leaves + (report.n_nodes - report.n_leaves)
        assert report.n_leaves >= 1

    def test_proba_is_distribution(self):
        X, y = make_multiclass_blobs(2000, n_classes=3, n_features=3, seed=8)
        model = _stream_fit(ExtremelyFastDecisionTreeClassifier(), X, y, [0, 1, 2])
        proba = model.predict_proba(X[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
