"""Base data-stream abstractions.

A :class:`Stream` produces observations in order; the prequential evaluator
consumes it in mini-batches of a fixed fraction of the stream (0.1% in the
paper).  Streams are finite here because every evaluated data set has a known
length, but the API mirrors a potentially infinite source.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np


class Stream(ABC):
    """A finite, ordered source of ``(X, y)`` observations."""

    def __init__(self, n_samples: int, n_features: int, n_classes: int) -> None:
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples!r}.")
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features!r}.")
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes!r}.")
        self.n_samples = int(n_samples)
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)
        self._position = 0

    # ------------------------------------------------------------------ API
    @abstractmethod
    def _generate(self, start: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Produce ``count`` observations starting at index ``start``."""

    def next_sample(self, batch_size: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Return the next batch of at most ``batch_size`` observations."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size!r}.")
        count = min(batch_size, self.n_remaining_samples())
        if count == 0:
            raise StopIteration("The stream is exhausted.")
        X, y = self._generate(self._position, count)
        self._position += count
        return X, y

    def has_more_samples(self) -> bool:
        return self._position < self.n_samples

    def n_remaining_samples(self) -> int:
        return self.n_samples - self._position

    @property
    def position(self) -> int:
        return self._position

    def restart(self) -> "Stream":
        self._position = 0
        return self

    @property
    def classes(self) -> np.ndarray:
        return np.arange(self.n_classes)

    # ------------------------------------------------------------ materialise
    def take(self, n: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Materialise up to ``n`` observations (all remaining by default)."""
        count = self.n_remaining_samples() if n is None else min(n, self.n_remaining_samples())
        if count == 0:
            return np.empty((0, self.n_features)), np.empty(0, dtype=int)
        return self.next_sample(count)


class ArrayStream(Stream):
    """Stream backed by in-memory arrays (used for real data and tests)."""

    def __init__(self, X: np.ndarray, y: np.ndarray) -> None:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}.")
        if len(X) != len(y):
            raise ValueError("X and y have inconsistent lengths.")
        classes = np.unique(y)
        super().__init__(
            n_samples=len(X), n_features=X.shape[1], n_classes=max(len(classes), 2)
        )
        self._X = X
        self._y = y
        self._classes = classes

    @property
    def classes(self) -> np.ndarray:
        return self._classes

    def _generate(self, start: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        return (
            self._X[start : start + count].copy(),
            self._y[start : start + count].copy(),
        )


def prequential_batches(
    stream: Stream,
    batch_fraction: float = 0.001,
    batch_size: int | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield test-then-train batches from a stream.

    The paper processes batches of 0.1% of the data per prequential
    iteration; pass ``batch_size`` to override the fraction with an absolute
    size.
    """
    if batch_size is None:
        if not 0.0 < batch_fraction <= 1.0:
            raise ValueError(
                f"batch_fraction must be in (0, 1], got {batch_fraction!r}."
            )
        batch_size = max(int(round(stream.n_samples * batch_fraction)), 1)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size!r}.")
    while stream.has_more_samples():
        yield stream.next_sample(batch_size)
