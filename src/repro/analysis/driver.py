"""Visitor driver: discover sources, run checkers, order findings.

The driver is the determinism boundary of repro-lint: files are discovered
in sorted order, checkers run in a fixed order, inline suppressions are
applied, and the combined findings are sorted by ``(path, line, col, rule,
message)`` -- so two runs over the same tree are byte-identical (pinned by
a property test that also shuffles the module order).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    Project,
    Rule,
    is_suppressed,
    suppressed_rules_by_line,
)

#: Name of the scanned package directory under the source root.
PACKAGE = "repro"


def default_checkers() -> tuple[Checker, ...]:
    """The shipped checker plugins, in their fixed execution order."""
    from repro.analysis.checkers import (
        CopyDisciplineChecker,
        KernelPurityChecker,
        LockDisciplineChecker,
        MetricNamingChecker,
        PersistenceChecker,
        RngDisciplineChecker,
        TelemetryGuardChecker,
        VectorizedParityChecker,
        WallClockChecker,
    )

    return (
        RngDisciplineChecker(),
        WallClockChecker(),
        TelemetryGuardChecker(),
        PersistenceChecker(),
        VectorizedParityChecker(),
        MetricNamingChecker(),
        LockDisciplineChecker(),
        KernelPurityChecker(),
        CopyDisciplineChecker(),
    )


def all_rules(checkers: tuple[Checker, ...] | None = None) -> tuple[Rule, ...]:
    """Every rule of the given checkers (default set), sorted by ID."""
    plugins = default_checkers() if checkers is None else checkers
    return tuple(sorted((rule for c in plugins for rule in c.rules), key=lambda r: r.id))


def default_root() -> Path:
    """The source root of the installed ``repro`` package (its parent)."""
    import repro

    package_file = repro.__file__
    if package_file is None:  # pragma: no cover - namespace-package guard
        raise RuntimeError("Cannot locate the repro package on disk.")
    return Path(package_file).resolve().parent.parent


def discover(root: Path | None = None) -> Project:
    """Parse every ``*.py`` under ``<root>/repro`` into a :class:`Project`."""
    root = default_root() if root is None else Path(root).resolve()
    package_dir = root / PACKAGE
    if not package_dir.is_dir():
        raise FileNotFoundError(f"No '{PACKAGE}' package under {root}.")
    modules: list[ModuleInfo] = []
    for path in sorted(package_dir.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        parts = rel.split("/")
        layer = parts[1] if len(parts) > 2 else "root"
        modules.append(
            ModuleInfo(path=path, rel=rel, layer=layer, source=source, tree=tree)
        )
    return Project(root=root, modules=tuple(modules))


def run(
    project: Project, checkers: tuple[Checker, ...] | None = None
) -> list[Finding]:
    """Run all checkers over the project; sorted, suppression-filtered."""
    plugins = default_checkers() if checkers is None else checkers
    findings: list[Finding] = []
    suppressions = {
        module.rel: suppressed_rules_by_line(module.source)
        for module in project.modules
    }
    for checker in plugins:
        for module in project.modules:
            findings.extend(checker.check_module(module, project))
        findings.extend(checker.check_project(project))
    kept = [
        finding
        for finding in findings
        if not is_suppressed(finding, suppressions.get(finding.path, {}))
    ]
    return sorted(kept)
