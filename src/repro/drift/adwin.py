"""ADWIN -- ADaptive WINdowing drift detector (Bifet & Gavaldà, 2007).

ADWIN maintains a variable-length window of recent values, stored as an
exponential histogram of buckets.  Whenever two adjacent sub-windows exhibit
a mean difference larger than a bound derived from the Hoeffding/Bernstein
inequality, the older sub-window is dropped and a drift is signalled.

This implementation follows the published algorithm (bucket rows with at most
``max_buckets`` buckets per row, each bucket in row ``i`` summarising ``2^i``
values) and is used by the Hoeffding Adaptive Tree, the Adaptive Random
Forest and Leveraging Bagging baselines.
"""

from __future__ import annotations

import math

from repro.drift.base import BaseDriftDetector


class _BucketRow:
    """A row of buckets that all summarise the same number of values."""

    __slots__ = ("totals", "variances")

    def __init__(self) -> None:
        self.totals: list[float] = []
        self.variances: list[float] = []

    def append(self, total: float, variance: float) -> None:
        self.totals.append(total)
        self.variances.append(variance)

    def drop_front(self, count: int = 1) -> None:
        del self.totals[:count]
        del self.variances[:count]

    def __len__(self) -> int:
        return len(self.totals)


class ADWIN(BaseDriftDetector):
    """Adaptive sliding-window change detector.

    Parameters
    ----------
    delta:
        Confidence parameter of the statistical test; smaller values make the
        detector more conservative.
    max_buckets:
        Maximum number of buckets per exponential-histogram row.
    min_window_length:
        Minimum length of each sub-window considered in a cut check.
    clock:
        Number of observations between change checks (the canonical
        implementation checks every 32 values).
    """

    def __init__(
        self,
        delta: float = 0.002,
        max_buckets: int = 5,
        min_window_length: int = 5,
        clock: int = 32,
    ) -> None:
        super().__init__()
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta!r}.")
        self.delta = float(delta)
        self.max_buckets = int(max_buckets)
        self.min_window_length = int(min_window_length)
        self.clock = int(clock)
        self._rows: list[_BucketRow] = [_BucketRow()]
        self.width = 0
        self.total = 0.0
        self.variance = 0.0
        self._tick = 0

    # ----------------------------------------------------------- properties
    @property
    def mean(self) -> float:
        """Mean of the values currently inside the adaptive window."""
        return self.total / self.width if self.width > 0 else 0.0

    @property
    def estimation(self) -> float:
        """Alias of :attr:`mean` (name used by the tree/ensemble code)."""
        return self.mean

    # -------------------------------------------------------------- updates
    def update(self, value: float) -> bool:
        """Insert one value; return ``True`` if the window was cut (drift)."""
        self.n_observations += 1
        self._tick += 1
        self._insert(float(value))
        self.in_drift = False
        if self._tick >= self.clock and self.width >= 2 * self.min_window_length:
            self._tick = 0
            self.in_drift = self._detect_change_and_shrink()
        return self.in_drift

    def _insert(self, value: float) -> None:
        if self.width > 0:
            old_mean = self.total / self.width
            self.variance += (
                (self.width / (self.width + 1.0)) * (value - old_mean) ** 2
            )
        self.width += 1
        self.total += value
        self._rows[0].append(value, 0.0)
        self._compress()

    def _compress(self) -> None:
        row_idx = 0
        while row_idx < len(self._rows):
            row = self._rows[row_idx]
            if len(row) <= self.max_buckets:
                break
            if row_idx + 1 == len(self._rows):
                self._rows.append(_BucketRow())
            next_row = self._rows[row_idx + 1]
            size = 2**row_idx
            total_1, total_2 = row.totals[0], row.totals[1]
            var_1, var_2 = row.variances[0], row.variances[1]
            mean_1, mean_2 = total_1 / size, total_2 / size
            merged_variance = (
                var_1 + var_2 + size * size * (mean_1 - mean_2) ** 2 / (2.0 * size)
            )
            next_row.append(total_1 + total_2, merged_variance)
            row.drop_front(2)
            row_idx += 1

    # ---------------------------------------------------------- change test
    def _detect_change_and_shrink(self) -> bool:
        """Check every admissible cut point; drop old buckets when cut."""
        change_detected = False
        keep_checking = True
        while keep_checking:
            keep_checking = False
            # Scan cut points from oldest to newest bucket.
            n0, sum0 = 0.0, 0.0
            n1, sum1 = float(self.width), float(self.total)
            for row_idx in range(len(self._rows) - 1, -1, -1):
                row = self._rows[row_idx]
                size = float(2**row_idx)
                for bucket_idx in range(len(row)):
                    n0 += size
                    sum0 += row.totals[bucket_idx]
                    n1 -= size
                    sum1 -= row.totals[bucket_idx]
                    if n1 < self.min_window_length:
                        break
                    if n0 < self.min_window_length:
                        continue
                    mean0, mean1 = sum0 / n0, sum1 / n1
                    if self._cut_expression(n0, n1, mean0, mean1):
                        change_detected = True
                        keep_checking = True
                        self._drop_oldest_bucket()
                        break
                if keep_checking:
                    break
        return change_detected

    def _cut_expression(
        self, n0: float, n1: float, mean0: float, mean1: float
    ) -> bool:
        total_n = float(self.width)
        if total_n <= 1:
            return False
        harmonic = 1.0 / n0 + 1.0 / n1
        delta_prime = self.delta / math.log(max(total_n, math.e))
        window_variance = self.variance / self.width
        m = 1.0 / harmonic
        epsilon = math.sqrt(
            (2.0 / m) * window_variance * math.log(2.0 / delta_prime)
        ) + (2.0 / (3.0 * m)) * math.log(2.0 / delta_prime)
        return abs(mean0 - mean1) > epsilon

    def _drop_oldest_bucket(self) -> None:
        for row_idx in range(len(self._rows) - 1, -1, -1):
            row = self._rows[row_idx]
            if len(row) == 0:
                continue
            size = 2**row_idx
            total = row.totals[0]
            variance = row.variances[0]
            mean = total / size
            if self.width > size:
                window_mean = self.total / self.width
                self.variance -= variance + (
                    size
                    * (self.width - size)
                    / self.width
                    * (mean - (self.total - total) / (self.width - size)) ** 2
                )
                self.variance = max(self.variance, 0.0)
            self.width -= size
            self.total -= total
            row.drop_front(1)
            break

    def reset(self) -> "ADWIN":
        super().reset()
        self._rows = [_BucketRow()]
        self.width = 0
        self.total = 0.0
        self.variance = 0.0
        self._tick = 0
        return self
