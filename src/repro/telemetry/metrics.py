"""Process-wide metric primitives: counters, gauges and latency histograms.

Metrics live in a :class:`MetricsRegistry` under hierarchical dotted names
(``repro.<layer>.<metric>[_unit]``), optionally distinguished by labels
(``model="dmt"``).  The registry is the storage layer of the telemetry
singleton (:mod:`repro.telemetry.runtime`); instrumented call sites never
talk to it unless telemetry is enabled, so the disabled hot path pays
nothing.

Histograms keep two representations at once:

* fixed cumulative buckets (Prometheus ``le`` semantics) for the text
  exporter, and
* a bounded raw-sample buffer for **exact** percentiles -- ``p50/p95/p99``
  are computed from the actual observations (numpy's linear interpolation),
  not from bucket boundaries, as long as the observation count stays within
  ``max_samples`` (default 100k).  Beyond the cap, percentiles degrade
  gracefully to bucket interpolation and :attr:`Histogram.exact` turns
  ``False``.

Nothing in this module reads the wall clock or any random generator:
metric values are whatever the call sites observe, so enabling telemetry
can never perturb a deterministic computation.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Callable, TypeVar, cast

import numpy as np

#: Default latency buckets (seconds): log-ish spacing from 10us to 10s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_.]*$")
_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def check_metric_name(name: str) -> str:
    """Validate the ``repro.layer.metric`` naming convention."""
    if not _NAME_RE.match(name):
        raise ValueError(
            f"Invalid metric name {name!r}: use lowercase dotted names like "
            "'repro.serving.latency_seconds'."
        )
    return name


def prometheus_name(name: str) -> str:
    """Dotted metric name rendered as a Prometheus identifier."""
    return _PROM_SANITIZE.sub("_", name)


def _render_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """Monotonically increasing count (requests, rows, events)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"Counters only increase, got {amount!r}.")
        self.value += amount

    def snapshot(self) -> dict[str, float]:
        return {"value": self.value}


class Gauge:
    """Last-write-wins instantaneous value (queue depth, model version)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict[str, float]:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram with an exact-percentile sample buffer.

    Parameters
    ----------
    buckets:
        Ascending upper bucket bounds (Prometheus ``le`` semantics); an
        implicit ``+Inf`` bucket is always appended.
    max_samples:
        Raw observations kept for exact percentiles.  Once exceeded, new
        observations still update the buckets/count/sum/min/max but
        percentiles fall back to bucket interpolation.
    """

    __slots__ = (
        "buckets",
        "bucket_counts",
        "count",
        "sum",
        "min",
        "max",
        "max_samples",
        "_samples",
    )
    kind = "histogram"

    def __init__(
        self,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        max_samples: int = 100_000,
    ) -> None:
        buckets = tuple(float(bound) for bound in buckets)
        if not buckets:
            raise ValueError("Histogram needs at least one bucket bound.")
        if any(b >= c for b, c in zip(buckets, buckets[1:])):
            raise ValueError(f"Bucket bounds must strictly ascend, got {buckets!r}.")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples!r}.")
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)  # last slot: +Inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.max_samples = int(max_samples)
        self._samples: list[float] = []

    # --------------------------------------------------------------- observe
    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        if len(self._samples) < self.max_samples:
            self._samples.append(value)

    # ------------------------------------------------------------- summaries
    @property
    def exact(self) -> bool:
        """Whether percentiles come from the raw observations."""
        return self.count == len(self._samples)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> list[float]:
        """Percentile values for quantiles ``qs`` (exact when possible)."""
        if self.count == 0:
            return [0.0] * len(qs)
        if self.exact:
            values = np.quantile(np.asarray(self._samples, dtype=float), qs)
            return [float(v) for v in np.atleast_1d(values)]
        return [self._bucket_percentile(q) for q in qs]

    def percentile(self, q: float) -> float:
        return self.percentiles((q,))[0]

    def _bucket_percentile(self, q: float) -> float:
        """Linear interpolation inside the bucket holding quantile ``q``."""
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                lower = self.min if index == 0 else max(self.buckets[index - 1], self.min)
                upper = self.max if index == len(self.buckets) else min(self.buckets[index], self.max)
                fraction = (target - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.max

    def snapshot(self) -> dict[str, object]:
        p50, p95, p99 = self.percentiles((0.5, 0.95, 0.99))
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": p50,
            "p95": p95,
            "p99": p99,
            "exact": self.exact,
        }


#: Union of the concrete metric primitives stored in a registry.
Metric = Counter | Gauge | Histogram
_M = TypeVar("_M", bound="Metric")


class MetricsRegistry:
    """Hierarchically-named store of counters, gauges and histograms.

    Metric identity is ``(name, sorted labels)``.  Lookup is a plain dict
    read (no lock) so enabled hot paths stay cheap; creation takes a lock
    and re-checks, so concurrent first touches cannot duplicate a metric.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Metric] = {}
        #: Bumped by :meth:`clear`.  Hot call sites that cache metric handles
        #: (the tracer, the scoring service) compare it to the generation
        #: they resolved under, so a cleared registry invalidates every
        #: cached handle instead of silently receiving writes to orphans.
        self.generation = 0

    # --------------------------------------------------------------- lookups
    def _get_or_create(
        self,
        name: str,
        labels: dict[str, object],
        factory: Callable[[], _M],
        kind: str,
    ) -> _M:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        # Deliberate unlocked fast path: dict.get on a key never deleted
        # outside clear() is safe under CPython's atomic dict reads, and the
        # slow path re-checks under the lock (classic double-checked lookup).
        metric = self._metrics.get(key)  # repro-lint: disable=LCK001
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    check_metric_name(name)
                    metric = factory()
                    self._metrics[key] = metric
        if metric.kind != kind:
            raise TypeError(
                f"Metric {name!r} is a {metric.kind}, requested as {kind}."
            )
        return cast("_M", metric)

    # ``name`` is positional-only so labels may themselves be called
    # ``name`` (e.g. per-deployment serving metrics).
    def counter(self, name: str, /, **labels: object) -> Counter:
        return self._get_or_create(name, labels, Counter, "counter")

    def gauge(self, name: str, /, **labels: object) -> Gauge:
        return self._get_or_create(name, labels, Gauge, "gauge")

    def histogram(
        self,
        name: str,
        /,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self._get_or_create(
            name, labels, lambda: Histogram(buckets), "histogram"
        )

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
            self.generation += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # --------------------------------------------------------------- exports
    def snapshot(self) -> list[dict[str, object]]:
        """JSON-safe records of every metric, sorted by (name, labels)."""
        with self._lock:
            items = sorted(self._metrics.items())
        return [
            {
                "name": name,
                "labels": dict(labels),
                "type": metric.kind,
                **metric.snapshot(),
            }
            for (name, labels), metric in items
        ]

    def to_prometheus(self) -> str:
        """Render every metric in the Prometheus text exposition format."""
        with self._lock:
            items = sorted(self._metrics.items())
        lines: list[str] = []
        seen_types: set[str] = set()
        for (name, labels), metric in items:
            prom = prometheus_name(name)
            if prom not in seen_types:
                lines.append(f"# TYPE {prom} {metric.kind}")
                seen_types.add(prom)
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, bucket_count in zip(
                    metric.buckets, metric.bucket_counts
                ):
                    cumulative += bucket_count
                    label_str = _render_labels(labels, f'le="{bound!r}"')
                    lines.append(f"{prom}_bucket{label_str} {cumulative}")
                label_str = _render_labels(labels, 'le="+Inf"')
                lines.append(f"{prom}_bucket{label_str} {metric.count}")
                lines.append(f"{prom}_sum{_render_labels(labels)} {metric.sum!r}")
                lines.append(f"{prom}_count{_render_labels(labels)} {metric.count}")
            else:
                lines.append(f"{prom}{_render_labels(labels)} {metric.value!r}")
        return "\n".join(lines) + ("\n" if lines else "")
