"""Page-Hinkley test for concept-drift detection.

FIMT-DD (Ikonomovska et al., 2011) uses the Page-Hinkley test on the absolute
prediction error of its inner nodes to decide when a branch has become
obsolete.  The test tracks the cumulative deviation of the signal from its
running mean and signals a change when the deviation exceeds a threshold.
"""

from __future__ import annotations

import numpy as np

from repro.drift.base import BaseDriftDetector
from repro.telemetry import TELEMETRY


class PageHinkley(BaseDriftDetector):
    """One-sided Page-Hinkley change detector (detects increases).

    Parameters
    ----------
    delta:
        Magnitude of changes that should be ignored (tolerance term).
    threshold:
        Detection threshold ``λ``; larger values mean fewer false alarms but
        slower detection.
    alpha:
        Forgetting factor applied to the cumulative statistic (1.0 disables
        forgetting, matching the classical test).
    min_observations:
        Number of observations required before the test may fire.
    """

    def __init__(
        self,
        delta: float = 0.005,
        threshold: float = 50.0,
        alpha: float = 1.0,
        min_observations: int = 30,
    ) -> None:
        super().__init__()
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta!r}.")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold!r}.")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}.")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.alpha = float(alpha)
        self.min_observations = int(min_observations)
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def update(self, value: float) -> bool:
        """Add one observation of the monitored signal."""
        value = float(value)
        self.n_observations += 1
        # Running mean of the signal.
        self._mean += (value - self._mean) / self.n_observations
        self._cumulative = (
            self.alpha * self._cumulative + (value - self._mean - self.delta)
        )
        self._minimum = min(self._minimum, self._cumulative)

        self.in_drift = (
            self.n_observations >= self.min_observations
            and self._cumulative - self._minimum > self.threshold
        )
        if self.in_drift:
            if TELEMETRY.enabled:
                self._telemetry_drift()
            self._reset_statistics()
        return self.in_drift

    def update_many(self, values) -> int | None:
        """Consume values until the first drift (see the base class).

        The running mean and the cumulative statistic are sequential
        recurrences; the batch version is the scalar loop over hoisted
        locals, bit-identical to per-value :meth:`update` calls.
        """
        values = np.asarray(values, dtype=float).ravel()
        n = self.n_observations
        mean = self._mean
        cumulative = self._cumulative
        minimum = self._minimum
        alpha = self.alpha
        delta = self.delta
        threshold = self.threshold
        min_observations = self.min_observations
        for index, value in enumerate(values.tolist()):
            n += 1
            mean += (value - mean) / n
            cumulative = alpha * cumulative + (value - mean - delta)
            if cumulative < minimum:
                minimum = cumulative
            if n >= min_observations and cumulative - minimum > threshold:
                self.in_drift = True
                if TELEMETRY.enabled:
                    self._telemetry_drift(n)
                self._reset_statistics()
                return index
        self.n_observations = n
        self._mean = mean
        self._cumulative = cumulative
        self._minimum = minimum
        self.in_drift = False
        return None

    def _reset_statistics(self) -> None:
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0
        self.n_observations = 0

    def reset(self) -> "PageHinkley":
        super().reset()
        self._reset_statistics()
        return self
