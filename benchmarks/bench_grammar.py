"""Scenario-grammar throughput benchmark.

Builds a pinned sample of grammar programs (the same ``seed=42`` family the
fuzz-grid test harness pins) and measures every sampled pipeline against
the raw source generators it consumes.  A drifting program genuinely reads
*two* concept streams (and an imbalanced one over-generates its base), so
the fair baseline is the summed cost of all raw sources, not the single
innermost stream.  The acceptance gate: **every sampled pipeline must cost
less than 2x its raw sources** -- composing a program out of the grammar
may not be more expensive than generating its data again.  Per-layer
overhead against the directly wrapped stream is reported as well
(informational; a mixing layer over a near-free generator legitimately
exceeds its single wrapped stream).

Results go to ``BENCH_grammar.json`` next to the repository root.  Run
with::

    PYTHONPATH=src python benchmarks/bench_grammar.py

Environment knobs: ``REPRO_BENCH_ROWS`` (stream length, default 200_000),
``REPRO_BENCH_BATCH`` (consumption batch size, default 2_048),
``REPRO_BENCH_REPEATS`` (timing repeats, best-of, default 3),
``REPRO_BENCH_PROGRAMS`` (number of sampled programs, default 12) and
``REPRO_BENCH_OVERHEAD_GATE`` (default 2.0; CI loosens it because
wall-clock ratios on shared runners flake under load).
"""

from __future__ import annotations

import json
import os
import time

from repro.streams.grammar import build_program, sample_program

OUTPUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_grammar.json")
GRAMMAR_SEED = 42
OVERHEAD_GATE = float(os.environ.get("REPRO_BENCH_OVERHEAD_GATE", "2.0"))


def _consume(stream, batch_size: int) -> int:
    stream.restart()
    rows = 0
    while stream.has_more_samples():
        X, _ = stream.next_sample(batch_size)
        rows += len(X)
    return rows


def _stack_times(stack, batch_size: int, repeats: int) -> list[tuple[float, int]]:
    """Best-of (seconds, rows) per full consumption of every stream.

    Passes are interleaved (one timing pass per stream, repeated) so slow
    machine-load drift cannot bias the ratios between the streams.  Total
    seconds -- not rows/sec -- is what the gate compares: an oversampling
    layer's source stream is longer than the pipeline it feeds, and that
    extra generation work is part of the raw cost.
    """
    best = [float("inf")] * len(stack)
    rows = [0] * len(stack)
    for _ in range(repeats):
        for index, stream in enumerate(stack):
            started = time.perf_counter()
            rows[index] = _consume(stream, batch_size)
            best[index] = min(best[index], time.perf_counter() - started)
    return list(zip(best, rows))


def _raw_sources(stack) -> list:
    """Every raw generator the pipeline consumes.

    The wrapped chain's innermost stream, plus the alternate concept of
    every two-stream mixing layer (drift injectors, oscillation).
    """
    sources = [stack[-1]]
    for stream in stack:
        alternate = getattr(stream, "alternate", None)
        if alternate is not None:
            sources.append(alternate)
    return sources


def sampled_overhead(
    n_programs: int, n_rows: int, batch_size: int, repeats: int
) -> dict:
    """Overhead of every sampled program vs its raw sources (the gate)."""
    records = {}
    for index in range(n_programs):
        program = sample_program(GRAMMAR_SEED, index)
        pipeline = build_program(program, n_rows)
        stack = pipeline.layer_stack()  # outermost ... base
        sources = _raw_sources(stack)
        timed = stack + sources[1:]  # stack already times the innermost
        timings = _stack_times(timed, batch_size, max(repeats, 5))
        stack_times = timings[: len(stack)]
        source_times = timings[len(stack) - 1 :]
        # Total seconds of all raw sources combined: what generating the
        # program's data costs without any grammar layer on top.
        raw_seconds = sum(seconds for seconds, _ in source_times)
        pipeline_seconds, pipeline_rows = stack_times[0]
        layers = {}
        for outer in range(len(stack) - 1):
            layer_name = type(stack[outer]).__name__
            seconds, rows = stack_times[outer]
            inner_seconds, _ = stack_times[outer + 1]
            layers[f"{outer}:{layer_name}"] = {
                "rows_per_second": round(rows / seconds),
                "overhead_vs_wrapped": round(seconds / inner_seconds, 3),
            }
        records[program.name] = {
            "axes": " -> ".join(program.axes()),
            "n_raw_sources": len(sources),
            "raw_sources_seconds": round(raw_seconds, 6),
            "program_seconds": round(pipeline_seconds, 6),
            "program_rows_per_second": round(pipeline_rows / pipeline_seconds),
            "overhead_vs_raw_sources": round(pipeline_seconds / raw_seconds, 3),
            "layers": layers,
        }
    return records


def main() -> dict:
    n_rows = int(os.environ.get("REPRO_BENCH_ROWS", "200000"))
    batch_size = int(os.environ.get("REPRO_BENCH_BATCH", "2048"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    n_programs = int(os.environ.get("REPRO_BENCH_PROGRAMS", "12"))

    sampled = sampled_overhead(n_programs, n_rows, batch_size, repeats)
    failures = {
        name: record["overhead_vs_raw_sources"]
        for name, record in sampled.items()
        if record["overhead_vs_raw_sources"] >= OVERHEAD_GATE
    }
    document = {
        "benchmark": "scenario_grammar_throughput",
        "grammar_seed": GRAMMAR_SEED,
        "n_programs": n_programs,
        "n_rows": n_rows,
        "batch_size": batch_size,
        "repeats": repeats,
        "overhead_gate": OVERHEAD_GATE,
        "programs": sampled,
        "overhead_gate_failures": failures,
    }
    with open(OUTPUT_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    width = max(len(name) for name in sampled)
    print(
        f"{'sampled program':<{width}}  program r/s  program s  raw srcs s"
        "  sources  vs raw sources"
    )
    for name, record in sampled.items():
        print(
            f"{name:<{width}}  {record['program_rows_per_second']:>11,}"
            f"  {record['program_seconds']:>9.4f}"
            f"  {record['raw_sources_seconds']:>10.4f}"
            f"  {record['n_raw_sources']:>7}"
            f"  {record['overhead_vs_raw_sources']:>13.3f}x"
        )
    if failures:
        raise SystemExit(
            f"Overhead gate (< {OVERHEAD_GATE}x vs raw sources) failed "
            f"for: {sorted(failures)}"
        )
    print(
        f"\nAll sampled programs under the {OVERHEAD_GATE}x overhead gate "
        f"-> {OUTPUT_PATH}"
    )
    return document


if __name__ == "__main__":
    main()
