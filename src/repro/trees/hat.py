"""HT-Ada -- the Hoeffding Adaptive Tree (Bifet & Gavaldà, 2009).

The adaptive Hoeffding Tree augments every split node with an ADWIN change
detector on its prediction error.  When a node's error distribution changes,
an alternate subtree is grown in parallel; once the alternate subtree is more
accurate than the original branch, it replaces it.  Following the paper's
configuration, no bootstrap sampling is applied in the leaves and leaves use
majority voting.
"""

from __future__ import annotations

import numpy as np

from repro.base import ComplexityReport
from repro.drift.adwin import ADWIN
from repro.trees.base import LeafNode, SplitNode, tree_depth
from repro.trees.observers import SplitSuggestion
from repro.trees.vfdt import HoeffdingTreeClassifier


class AdaLeafNode(LeafNode):
    """Learning leaf with an ADWIN estimator of its own error rate."""

    def __init__(self, *args, adwin_delta: float = 0.002, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.adwin = ADWIN(delta=adwin_delta)


class AdaSplitNode(SplitNode):
    """Split node with an ADWIN error monitor and an optional alternate tree."""

    def __init__(self, *args, adwin_delta: float = 0.002, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.adwin = ADWIN(delta=adwin_delta)
        self.alternate_tree = None
        # Error bookkeeping for the main branch vs. the alternate branch
        # since the alternate tree was created.
        self.main_errors_since_alt = 0.0
        self.alt_errors = 0.0
        self.alt_weight = 0.0


class HoeffdingAdaptiveTreeClassifier(HoeffdingTreeClassifier):
    """Hoeffding Adaptive Tree (the paper's HT-Ada baseline).

    Parameters
    ----------
    adwin_delta:
        Confidence of the per-node ADWIN detectors.
    alternate_min_weight:
        Minimum number of observations an alternate subtree must see before
        it may replace (or be discarded in favour of) the original branch.
    grace_period, split_confidence, tie_threshold, leaf_prediction,
    split_criterion, n_split_points, max_depth, nominal_features:
        As in :class:`~repro.trees.vfdt.HoeffdingTreeClassifier`.
    """

    def __init__(
        self,
        grace_period: int = 200,
        split_confidence: float = 1e-7,
        tie_threshold: float = 0.05,
        leaf_prediction: str = "mc",
        split_criterion: str = "info_gain",
        n_split_points: int = 10,
        max_depth: int | None = None,
        nominal_features: set[int] | None = None,
        adwin_delta: float = 0.002,
        alternate_min_weight: int = 150,
    ) -> None:
        super().__init__(
            grace_period=grace_period,
            split_confidence=split_confidence,
            tie_threshold=tie_threshold,
            leaf_prediction=leaf_prediction,
            split_criterion=split_criterion,
            n_split_points=n_split_points,
            max_depth=max_depth,
            nominal_features=nominal_features,
        )
        self.adwin_delta = float(adwin_delta)
        self.alternate_min_weight = int(alternate_min_weight)
        self.n_alternate_trees = 0
        self.n_tree_swaps = 0
        self.n_pruned_alternates = 0

    def reset(self) -> "HoeffdingAdaptiveTreeClassifier":
        super().reset()
        self.n_alternate_trees = 0
        self.n_tree_swaps = 0
        self.n_pruned_alternates = 0
        return self

    # ---------------------------------------------------------------- nodes
    def _new_leaf(
        self, depth: int, initial_dist: np.ndarray | None = None
    ) -> AdaLeafNode:
        return AdaLeafNode(
            n_classes=max(self.n_classes_, 2),
            n_features=self.n_features_,
            leaf_prediction=self.leaf_prediction,
            n_split_points=self.n_split_points,
            nominal_features=self.nominal_features,
            depth=depth,
            initial_dist=initial_dist,
            adwin_delta=self.adwin_delta,
        )

    def _split_leaf(
        self,
        leaf: LeafNode,
        suggestion: SplitSuggestion,
        parent: SplitNode | None,
        branch: int,
    ) -> None:
        new_split = AdaSplitNode(
            feature=suggestion.feature,
            threshold=suggestion.threshold,
            is_nominal=suggestion.is_nominal,
            class_dist=leaf.class_dist.copy(),
            depth=leaf.depth,
            adwin_delta=self.adwin_delta,
        )
        for child_idx in range(2):
            initial = (
                suggestion.children_dists[child_idx]
                if len(suggestion.children_dists) == 2
                else None
            )
            new_split.children[child_idx] = self._new_leaf(
                depth=leaf.depth + 1, initial_dist=initial
            )
        self._replace_child(parent, branch, new_split)
        self.n_split_events += 1

    # ---------------------------------------------------------------- learn
    def _learn_one(self, x: np.ndarray, y_idx: int) -> None:
        if self.root is None:
            self.root = self._new_leaf(depth=0)
        self._learn_in_subtree(self.root, x, y_idx, parent=None, branch=0)

    def _subtree_predict(self, node, x: np.ndarray) -> int:
        """Class index predicted by the subtree rooted at ``node``."""
        n_classes = max(self.n_classes_, 2)
        while isinstance(node, SplitNode):
            child = node.child_for(x)
            if child is None:
                dist = node.class_dist
                if dist.sum() == 0:
                    return 0
                return int(np.argmax(dist))
            node = child
        return int(np.argmax(node.predict_proba(x, n_classes)))

    def _learn_in_subtree(
        self, node, x: np.ndarray, y_idx: int, parent, branch: int
    ) -> None:
        if isinstance(node, AdaSplitNode):
            self._learn_split_node(node, x, y_idx, parent, branch)
        else:
            self._learn_leaf_node(node, x, y_idx, parent, branch)

    def _learn_leaf_node(
        self, leaf: AdaLeafNode, x: np.ndarray, y_idx: int, parent, branch: int
    ) -> None:
        prediction = self._subtree_predict(leaf, x)
        leaf.adwin.update(float(prediction != y_idx))
        leaf.learn_one(x, y_idx, n_classes=max(self.n_classes_, 2))
        if self._can_split(leaf):
            weight_seen = leaf.total_weight
            if weight_seen - leaf.weight_at_last_split_attempt >= self.grace_period:
                leaf.weight_at_last_split_attempt = weight_seen
                self._attempt_split(leaf, parent, branch)

    def _learn_split_node(
        self, node: AdaSplitNode, x: np.ndarray, y_idx: int, parent, branch: int
    ) -> None:
        error = float(self._subtree_predict(node, x) != y_idx)
        previous_error = node.adwin.mean
        drift = node.adwin.update(error)

        if node.alternate_tree is None:
            if drift and node.adwin.mean > previous_error:
                node.alternate_tree = self._new_leaf(depth=node.depth)
                node.main_errors_since_alt = 0.0
                node.alt_errors = 0.0
                node.alt_weight = 0.0
                self.n_alternate_trees += 1
        else:
            # Train the alternate subtree in parallel and track both errors.
            alt_error = float(self._subtree_predict(node.alternate_tree, x) != y_idx)
            node.alt_errors += alt_error
            node.main_errors_since_alt += error
            node.alt_weight += 1.0
            self._learn_in_subtree(
                node.alternate_tree, x, y_idx, parent=node, branch=-1
            )
            if node.alt_weight >= self.alternate_min_weight:
                alt_rate = node.alt_errors / node.alt_weight
                main_rate = node.main_errors_since_alt / node.alt_weight
                if alt_rate < main_rate:
                    self._replace_child(parent, branch, node.alternate_tree)
                    self.n_tree_swaps += 1
                    # Continue learning inside the promoted subtree.
                    node = None
                elif alt_rate > main_rate + 0.05:
                    node.alternate_tree = None
                    self.n_pruned_alternates += 1
                if node is None:
                    return

        # Route the observation down the main branch.
        child_branch = node.branch_for(x)
        child = node.children[child_branch]
        if child is None:
            child = self._new_leaf(depth=node.depth + 1)
            node.children[child_branch] = child
        self._learn_in_subtree(child, x, y_idx, parent=node, branch=child_branch)

    def _replace_child(self, parent, branch: int, new_node) -> None:
        if parent is None:
            self.root = new_node
        elif branch == -1:
            parent.alternate_tree = new_node
        else:
            parent.children[branch] = new_node

    # ------------------------------------------------------- interpretability
    def _main_tree_nodes(self) -> list:
        """Nodes of the main tree only (alternate subtrees are excluded)."""
        if self.root is None:
            return []
        nodes = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            if isinstance(node, SplitNode):
                stack.extend(child for child in node.children if child is not None)
        return nodes

    def complexity(self) -> ComplexityReport:
        if self.root is None:
            return ComplexityReport(n_splits=0, n_parameters=0)
        nodes = self._main_tree_nodes()
        n_inner = sum(1 for node in nodes if isinstance(node, SplitNode))
        n_leaves = sum(1 for node in nodes if isinstance(node, LeafNode))
        n_classes = max(self.n_classes_, 2)
        if self.leaf_prediction == "mc":
            leaf_splits, leaf_params = 0, 1
        else:
            leaf_splits = 1 if n_classes == 2 else n_classes
            leaf_params = self.n_features_ * (1 if n_classes == 2 else n_classes)
        return ComplexityReport(
            n_splits=n_inner + leaf_splits * n_leaves,
            n_parameters=n_inner + leaf_params * n_leaves,
            n_nodes=n_inner + n_leaves,
            n_leaves=n_leaves,
            depth=tree_depth(self.root),
        )
