"""Tests for the synthetic stream generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.synthetic import (
    AgrawalGenerator,
    ConceptDriftStream,
    HyperplaneGenerator,
    LEDGenerator,
    MixedGenerator,
    RandomRBFGenerator,
    SEAGenerator,
    SineGenerator,
    STAGGERGenerator,
    WaveformGenerator,
)
from repro.streams.synthetic.agrawal import _classify


class TestSEA:
    def test_shapes_and_ranges(self):
        stream = SEAGenerator(n_samples=1000, noise=0.0, seed=0)
        X, y = stream.next_sample(500)
        assert X.shape == (500, 3)
        assert X.min() >= 0.0 and X.max() <= 10.0
        assert set(np.unique(y)) <= {0, 1}

    def test_noise_free_labels_match_concept(self):
        stream = SEAGenerator(n_samples=1000, noise=0.0, seed=1)
        X, y = stream.next_sample(1000)
        thresholds = np.array([stream.threshold_at(i) for i in range(1000)])
        np.testing.assert_array_equal(y, (X[:, 0] + X[:, 1] <= thresholds).astype(int))

    def test_concept_changes_at_drift_positions(self):
        stream = SEAGenerator(n_samples=1000, drift_positions=(0.5,), seed=0)
        assert stream.concept_at(0) == 0
        assert stream.concept_at(499) == 0
        assert stream.concept_at(500) == 1

    def test_noise_flips_labels(self):
        clean = SEAGenerator(n_samples=2000, noise=0.0, seed=3)
        noisy = SEAGenerator(n_samples=2000, noise=0.3, seed=3)
        _, y_clean = clean.next_sample(2000)
        _, y_noisy = noisy.next_sample(2000)
        assert np.mean(y_clean != y_noisy) > 0.1

    def test_restart_reproduces_sequence(self):
        stream = SEAGenerator(n_samples=500, seed=5)
        X1, y1 = stream.next_sample(200)
        stream.restart()
        X2, y2 = stream.next_sample(200)
        np.testing.assert_allclose(X1, X2)
        np.testing.assert_array_equal(y1, y2)

    def test_invalid_noise_raises(self):
        with pytest.raises(ValueError):
            SEAGenerator(noise=1.5)


class TestAgrawal:
    def test_shapes_and_classes(self):
        stream = AgrawalGenerator(n_samples=500, seed=0)
        X, y = stream.next_sample(500)
        assert X.shape == (500, 9)
        assert set(np.unique(y)) <= {0, 1}

    def test_feature_ranges(self):
        stream = AgrawalGenerator(n_samples=1000, perturbation=0.0, seed=1)
        X, _ = stream.next_sample(1000)
        salary, commission, age = X[:, 0], X[:, 1], X[:, 2]
        assert salary.min() >= 20_000 and salary.max() <= 150_000
        assert age.min() >= 20 and age.max() <= 80
        assert np.all((commission == 0) | (commission >= 10_000))

    def test_all_ten_functions_are_valid(self):
        record = np.array([80_000, 0, 45, 2, 5, 4, 300_000, 10, 100_000], dtype=float)
        labels = [_classify(fid, record) for fid in range(10)]
        assert all(label in (0, 1) for label in labels)

    def test_unknown_function_raises(self):
        with pytest.raises(ValueError):
            _classify(10, np.zeros(9))

    def test_drift_windows_blend_functions(self):
        stream = AgrawalGenerator(
            n_samples=1000, drift_windows=((0.4, 0.6),), seed=2
        )
        current, upcoming, blend = stream.active_functions(500)
        assert upcoming == (current + 1) % 10
        assert 0.0 < blend < 1.0
        current_after, _, blend_after = stream.active_functions(700)
        assert blend_after == 0.0
        assert current_after == 1

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            AgrawalGenerator(drift_windows=((0.6, 0.4),))


class TestHyperplane:
    def test_shapes_and_noise(self):
        stream = HyperplaneGenerator(n_samples=500, n_features=10, seed=0)
        X, y = stream.next_sample(500)
        assert X.shape == (500, 10)
        assert set(np.unique(y)) <= {0, 1}

    def test_weights_drift_over_time(self):
        stream = HyperplaneGenerator(
            n_samples=5000, n_features=5, n_drift_features=5,
            magnitude=0.01, noise=0.0, seed=1,
        )
        before = stream.weights
        stream.next_sample(3000)
        after = stream.weights
        assert not np.allclose(before, after)

    def test_no_drift_when_magnitude_zero(self):
        stream = HyperplaneGenerator(
            n_samples=2000, n_features=5, magnitude=0.0, seed=2
        )
        before = stream.weights
        stream.next_sample(1000)
        np.testing.assert_allclose(before, stream.weights)

    def test_noise_free_labels_are_balanced(self):
        stream = HyperplaneGenerator(
            n_samples=4000, n_features=8, noise=0.0, magnitude=0.0, seed=3
        )
        _, y = stream.next_sample(4000)
        assert 0.3 < y.mean() < 0.7

    def test_invalid_drift_features_raise(self):
        with pytest.raises(ValueError):
            HyperplaneGenerator(n_features=5, n_drift_features=6)


class TestOtherGenerators:
    def test_random_rbf_shapes(self):
        stream = RandomRBFGenerator(
            n_samples=300, n_features=6, n_classes=3, n_centroids=10, seed=0
        )
        X, y = stream.next_sample(300)
        assert X.shape == (300, 6)
        assert set(np.unique(y)) <= {0, 1, 2}

    def test_random_rbf_drift_moves_centroids(self):
        stream = RandomRBFGenerator(
            n_samples=2000, n_features=4, drift_speed=0.01, seed=1
        )
        assert not np.allclose(stream.centroids_at(0), stream.centroids_at(500))
        # Positions stay inside the unit hypercube under wall reflection.
        assert stream.centroids_at(500).min() >= 0.0
        assert stream.centroids_at(500).max() <= 1.0

    def test_stagger_concepts(self):
        stream = STAGGERGenerator(n_samples=100, classification_function=0, seed=0)
        X, y = stream.next_sample(100)
        expected = ((X[:, 0] == 0) & (X[:, 1] == 0)).astype(int)
        np.testing.assert_array_equal(y, expected)

    def test_stagger_drift_changes_concept(self):
        stream = STAGGERGenerator(
            n_samples=100, classification_function=0, drift_positions=(0.5,), seed=0
        )
        assert stream.concept_at(10) == 0
        assert stream.concept_at(60) == 1

    def test_sine_concepts_and_reversal(self):
        stream = SineGenerator(n_samples=200, classification_function=0, seed=0)
        X, y = stream.next_sample(200)
        expected = (X[:, 1] <= np.sin(X[:, 0])).astype(int)
        np.testing.assert_array_equal(y, expected)
        reversed_stream = SineGenerator(
            n_samples=200, classification_function=1, seed=0
        )
        X_r, y_r = reversed_stream.next_sample(200)
        np.testing.assert_array_equal(y_r, 1 - (X_r[:, 1] <= np.sin(X_r[:, 0])).astype(int))

    def test_mixed_generator_label_rule(self):
        stream = MixedGenerator(n_samples=300, seed=0)
        X, y = stream.next_sample(300)
        conditions = (
            (X[:, 0] == 1).astype(int)
            + (X[:, 1] == 1).astype(int)
            + (X[:, 3] < 0.5 + 0.3 * np.sin(3 * np.pi * X[:, 2])).astype(int)
        )
        np.testing.assert_array_equal(y, (conditions >= 2).astype(int))

    def test_led_shapes_and_noise_free_decoding(self):
        stream = LEDGenerator(n_samples=200, noise=0.0, n_irrelevant=0, seed=0)
        X, y = stream.next_sample(200)
        assert X.shape == (200, 7)
        assert set(np.unique(y)) <= set(range(10))

    def test_led_with_irrelevant_attributes(self):
        stream = LEDGenerator(n_samples=100, n_irrelevant=17, seed=1)
        X, _ = stream.next_sample(100)
        assert X.shape == (100, 24)

    def test_waveform_shapes(self):
        stream = WaveformGenerator(n_samples=200, seed=0)
        X, y = stream.next_sample(200)
        assert X.shape == (200, 21)
        assert set(np.unique(y)) <= {0, 1, 2}


class TestConceptDriftStream:
    def test_blends_two_streams(self):
        base = SEAGenerator(n_samples=2000, noise=0.0, drift_positions=(), seed=0)
        drift = SEAGenerator(
            n_samples=2000, noise=0.0, drift_positions=(), seed=1
        )
        combined = ConceptDriftStream(base, drift, position=1000, width=1, seed=0)
        X, y = combined.next_sample(2000)
        assert X.shape == (2000, 3)

    def test_drift_probability_is_sigmoid(self):
        base = SEAGenerator(n_samples=1000, seed=0)
        drift = SEAGenerator(n_samples=1000, seed=1)
        combined = ConceptDriftStream(base, drift, position=500, width=100, seed=0)
        assert combined.drift_probability(0) < 0.01
        assert combined.drift_probability(500) == pytest.approx(0.5)
        assert combined.drift_probability(999) > 0.99

    def test_incompatible_streams_raise(self):
        base = SEAGenerator(n_samples=100, seed=0)
        other = HyperplaneGenerator(n_samples=100, n_features=5, seed=0)
        with pytest.raises(ValueError):
            ConceptDriftStream(base, other, position=50)


class TestGeneratorProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), batch=st.integers(1, 200))
    def test_sea_batching_is_consistent_property(self, seed, batch):
        """Drawing the stream in different batch sizes yields valid output of
        the requested length and never exceeds the stream length."""
        stream = SEAGenerator(n_samples=400, seed=seed)
        total = 0
        while stream.has_more_samples():
            X, y = stream.next_sample(batch)
            assert len(X) == len(y) <= batch
            total += len(X)
        assert total == 400

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_generators_are_deterministic_per_seed_property(self, seed):
        first = AgrawalGenerator(n_samples=100, seed=seed).next_sample(100)
        second = AgrawalGenerator(n_samples=100, seed=seed).next_sample(100)
        np.testing.assert_allclose(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])
