"""Data streams: base API, preprocessing, synthetic generators and surrogates."""

from repro.streams.base import ArrayStream, Stream, prequential_batches
from repro.streams.preprocessing import (
    NormalizedStream,
    OnlineMinMaxScaler,
    factorize_columns,
)
from repro.streams.synthetic import (
    AgrawalGenerator,
    ConceptDriftStream,
    HyperplaneGenerator,
    LEDGenerator,
    MixedGenerator,
    RandomRBFGenerator,
    SEAGenerator,
    SineGenerator,
    STAGGERGenerator,
    WaveformGenerator,
)
from repro.streams.realworld import SurrogateStream, make_surrogate

__all__ = [
    "Stream",
    "ArrayStream",
    "prequential_batches",
    "OnlineMinMaxScaler",
    "NormalizedStream",
    "factorize_columns",
    "SEAGenerator",
    "AgrawalGenerator",
    "HyperplaneGenerator",
    "RandomRBFGenerator",
    "STAGGERGenerator",
    "LEDGenerator",
    "SineGenerator",
    "MixedGenerator",
    "WaveformGenerator",
    "ConceptDriftStream",
    "SurrogateStream",
    "make_surrogate",
]
