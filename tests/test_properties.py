"""Cross-cutting property-based tests (hypothesis) on the core invariants.

These complement the per-module tests by checking the paper's theoretical
properties and the main data-structure invariants under randomly generated
inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dmt import DynamicModelTree
from repro.core.gains import aic_prune_threshold, aic_split_threshold
from repro.drift.adwin import ADWIN
from repro.evaluation.metrics import ConfusionMatrix
from repro.linear.glm import IncrementalGLM
from repro.streams.realworld import SurrogateStream
from repro.trees.vfdt import HoeffdingTreeClassifier


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), n_features=st.integers(1, 6))
def test_glm_proba_rows_always_sum_to_one(seed, n_features):
    rng = np.random.default_rng(seed)
    model = IncrementalGLM(n_features=n_features, n_classes=int(rng.integers(2, 5)), rng=seed)
    X = rng.normal(size=(20, n_features)) * rng.uniform(0.1, 10.0)
    proba = model.predict_proba(X)
    np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
    assert np.all(proba >= 0.0)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_glm_training_never_produces_nan(seed):
    rng = np.random.default_rng(seed)
    model = IncrementalGLM(n_features=3, n_classes=3, learning_rate=0.1, rng=seed)
    for _ in range(10):
        X = rng.normal(size=(8, 3)) * 5.0
        y = rng.integers(0, 3, size=8)
        model.fit_incremental(X, y)
    assert np.all(np.isfinite(model.weights))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_dmt_consistency_split_threshold_positive(seed):
    """Property 1 (consistency): because every structural change requires a
    gain above the AIC threshold -- which is strictly positive for eps < 1 --
    a split can never increase the estimated loss of the tree."""
    rng = np.random.default_rng(seed)
    epsilon = float(rng.uniform(1e-10, 0.99))
    k = int(rng.integers(1, 500))
    assert aic_split_threshold(k, k, k, epsilon) > 0.0


@settings(max_examples=10, deadline=None)
@given(n_leaves=st.integers(2, 20), k=st.integers(1, 50))
def test_dmt_minimality_prune_threshold_below_split_threshold(n_leaves, k):
    """Property 2 (minimality): collapsing a subtree with many leaf
    parameters into one leaf requires less gain than adding new parameters,
    so simpler models are systematically preferred at equal loss."""
    epsilon = 1e-8
    prune = aic_prune_threshold(k, n_leaves * k, epsilon)
    split = aic_split_threshold(k, k, k, epsilon)
    assert prune < split


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 500))
def test_dmt_prediction_invariants_on_random_streams(seed):
    rng = np.random.default_rng(seed)
    n_classes = int(rng.integers(2, 4))
    X = rng.uniform(size=(300, 3))
    y = rng.integers(0, n_classes, size=300)
    model = DynamicModelTree(random_state=seed)
    for start in range(0, 300, 60):
        model.partial_fit(
            X[start : start + 60], y[start : start + 60], classes=list(range(n_classes))
        )
    proba = model.predict_proba(X[:50])
    np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
    predictions = model.predict(X[:50])
    assert set(predictions.tolist()) <= set(range(n_classes))
    report = model.complexity()
    assert report.n_splits >= 0 and report.n_parameters >= 0
    assert report.n_leaves == report.n_nodes - (report.n_nodes - report.n_leaves)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 500))
def test_hoeffding_tree_node_accounting_invariant(seed):
    """In a binary tree grown by splitting leaves, #leaves = #inner + 1."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(2000, 3))
    y = (X[:, 0] > rng.uniform(0.3, 0.7)).astype(int)
    model = HoeffdingTreeClassifier(grace_period=100, split_confidence=1e-3)
    for start in range(0, 2000, 200):
        model.partial_fit(X[start : start + 200], y[start : start + 200], classes=[0, 1])
    n_inner = model.n_nodes - model.n_leaves
    assert model.n_leaves == n_inner + 1


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000), probability=st.floats(0.05, 0.95))
def test_adwin_mean_stays_in_unit_interval(seed, probability):
    rng = np.random.default_rng(seed)
    detector = ADWIN()
    for value in rng.binomial(1, probability, size=400):
        detector.update(float(value))
        assert 0.0 <= detector.mean <= 1.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_confusion_matrix_total_equals_updates(seed):
    rng = np.random.default_rng(seed)
    matrix = ConfusionMatrix(np.arange(4))
    total = 0
    for _ in range(5):
        n = int(rng.integers(1, 30))
        matrix.update(rng.integers(0, 4, size=n), rng.integers(0, 4, size=n))
        total += n
    assert matrix.total == total
    assert 0.0 <= matrix.f1("macro") <= 1.0


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1000))
def test_surrogate_streams_stay_in_unit_cube(seed):
    stream = SurrogateStream(
        n_samples=200, n_features=5, n_classes=3,
        drift="incremental", n_drift_events=2, seed=seed,
    )
    X, y = stream.next_sample(200)
    assert np.all((X >= 0.0) & (X <= 1.0))
    assert np.all((y >= 0) & (y < 3))


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 200))
def test_dmt_same_data_same_tree(seed):
    """Determinism: identical data and seed produce identical trees."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(400, 2))
    y = (X[:, 0] + X[:, 1] > 1.0).astype(int)

    def build():
        model = DynamicModelTree(random_state=seed)
        for start in range(0, 400, 50):
            model.partial_fit(X[start : start + 50], y[start : start + 50], classes=[0, 1])
        return model

    first, second = build(), build()
    assert first.n_nodes == second.n_nodes
    np.testing.assert_allclose(
        first.root.model.weights, second.root.model.weights
    )
