"""EDDM -- Early Drift Detection Method (Baena-García et al., 2006).

EDDM monitors the distance (number of observations) between consecutive
classification errors.  Under a stable concept this distance grows as the
model improves; when a concept drifts, errors cluster and the distance
shrinks.  EDDM is particularly sensitive to gradual drift, complementing DDM.
"""

from __future__ import annotations

import math

from repro.drift.base import BaseDriftDetector


class EDDM(BaseDriftDetector):
    """Early Drift Detection Method over a stream of 0/1 error indicators.

    Parameters
    ----------
    warning_level:
        Ratio threshold below which the warning flag is raised (default 0.95).
    drift_level:
        Ratio threshold below which drift is signalled (default 0.90).
    min_errors:
        Minimum number of observed errors before the test may fire.
    """

    def __init__(
        self,
        warning_level: float = 0.95,
        drift_level: float = 0.90,
        min_errors: int = 30,
    ) -> None:
        super().__init__()
        if not 0.0 < drift_level < warning_level <= 1.0:
            raise ValueError(
                "Levels must satisfy 0 < drift_level < warning_level <= 1, "
                f"got drift={drift_level!r}, warning={warning_level!r}."
            )
        self.warning_level = float(warning_level)
        self.drift_level = float(drift_level)
        self.min_errors = int(min_errors)
        self._reset_statistics()

    def _reset_statistics(self) -> None:
        self.n_observations = 0
        self._n_errors = 0
        self._last_error_at = 0
        self._distance_mean = 0.0
        self._distance_m2 = 0.0
        self._max_score = 0.0

    def update(self, value: float) -> bool:
        """Add one error indicator (1 = misclassified, 0 = correct)."""
        value = float(value)
        if value not in (0.0, 1.0):
            raise ValueError(f"EDDM expects 0/1 error indicators, got {value!r}.")
        self.n_observations += 1
        self.in_drift = False
        self.in_warning = False
        if value != 1.0:
            return False

        self._n_errors += 1
        distance = self.n_observations - self._last_error_at
        self._last_error_at = self.n_observations
        delta = distance - self._distance_mean
        self._distance_mean += delta / self._n_errors
        self._distance_m2 += delta * (distance - self._distance_mean)

        if self._n_errors < self.min_errors:
            return False

        std = math.sqrt(max(self._distance_m2 / self._n_errors, 0.0))
        score = self._distance_mean + 2.0 * std
        self._max_score = max(self._max_score, score)
        if self._max_score <= 0:
            return False
        ratio = score / self._max_score

        if ratio < self.drift_level:
            self.in_drift = True
            self._reset_statistics()
        elif ratio < self.warning_level:
            self.in_warning = True
        return self.in_drift

    def reset(self) -> "EDDM":
        super().reset()
        self._reset_statistics()
        return self
