"""Ensemble baselines built on Hoeffding Trees.

The paper reports two state-of-the-art ensembles for reference: an Adaptive
Random Forest and a Leveraging Bagging ensemble, each trained with three
basic Hoeffding Tree weak learners configured like the stand-alone VFDT.
"""

from repro.ensembles.bagging import OzaBaggingClassifier
from repro.ensembles.leveraging_bagging import LeveragingBaggingClassifier
from repro.ensembles.adaptive_random_forest import AdaptiveRandomForestClassifier

__all__ = [
    "OzaBaggingClassifier",
    "LeveragingBaggingClassifier",
    "AdaptiveRandomForestClassifier",
]
