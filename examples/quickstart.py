"""Quickstart: train a Dynamic Model Tree on a drifting data stream.

This example shows the three-step workflow of the library:

1. create a stream (here the SEA generator with abrupt concept drift),
2. run a prequential (test-then-train) evaluation of a Dynamic Model Tree,
3. inspect predictive quality, complexity and the per-leaf linear models.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DynamicModelTree, HoeffdingTreeClassifier, PrequentialEvaluator
from repro.streams import NormalizedStream
from repro.streams.synthetic import SEAGenerator


def main() -> None:
    # ------------------------------------------------------------ 1. stream
    # 20,000 observations of the SEA concepts with 10% label noise and four
    # abrupt concept drifts; features are normalised to [0, 1] online, just
    # like the paper's preprocessing.
    stream = NormalizedStream(SEAGenerator(n_samples=20_000, noise=0.1, seed=42))

    # ------------------------------------------------------- 2. evaluation
    model = DynamicModelTree(learning_rate=0.05, epsilon=1e-8, random_state=42)
    evaluator = PrequentialEvaluator(batch_fraction=0.005)
    result = evaluator.evaluate(model, stream, model_name="DMT", dataset_name="SEA")

    print("=== Dynamic Model Tree on SEA (abrupt drift) ===")
    print(f"prequential F1 (mean ± std): {result.f1_mean:.3f} ± {result.f1_std:.3f}")
    print(f"prequential accuracy:        {result.accuracy_mean:.3f}")
    print(f"splits (mean over time):     {result.n_splits_mean:.1f}")
    print(f"parameters (mean over time): {result.n_parameters_mean:.1f}")
    print(f"seconds per iteration:       {result.time_mean * 1000:.2f} ms")

    # ------------------------------------------------- 3. interpretability
    report = model.complexity()
    print("\nFinal tree structure:")
    print(f"  nodes={report.n_nodes}  leaves={report.n_leaves}  depth={report.depth}")
    print(f"  splits={report.n_splits}  parameters={report.n_parameters}")

    print("\nPer-leaf linear models (local explanations):")
    for index, leaf in enumerate(model.leaf_feature_weights()):
        path = " AND ".join(leaf["path"]) if leaf["path"] else "(root)"
        weights = ", ".join(f"{w:+.2f}" for w in leaf["weights"][0])
        print(f"  leaf {index}: {path}")
        print(f"     weights per feature: [{weights}]  "
              f"({leaf['n_observations']:.0f} observations)")

    # ------------------------------------------- comparison with a VFDT
    vfdt = HoeffdingTreeClassifier(leaf_prediction="mc")
    vfdt_stream = NormalizedStream(SEAGenerator(n_samples=20_000, noise=0.1, seed=42))
    vfdt_result = evaluator.evaluate(
        vfdt, vfdt_stream, model_name="VFDT", dataset_name="SEA"
    )
    print("\n=== Reference: VFDT (majority-class leaves) on the same stream ===")
    print(f"prequential F1: {vfdt_result.f1_mean:.3f} ± {vfdt_result.f1_std:.3f}")
    print(f"splits:         {vfdt_result.n_splits_mean:.1f}")
    print(
        "\nThe DMT reaches at least comparable predictive quality with a "
        "fraction of the structural complexity."
    )


if __name__ == "__main__":
    main()
