"""Online bagging (Oza & Russell, 2001).

Online bagging approximates bootstrap resampling in a stream by presenting
every observation to each ensemble member ``k ~ Poisson(λ)`` times.  It is
the common substrate of the Leveraging Bagging and Adaptive Random Forest
baselines.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.base import ComplexityReport, StreamClassifier
from repro.trees.vfdt import HoeffdingTreeClassifier
from repro.utils.validation import check_positive, check_random_state


class OzaBaggingClassifier(StreamClassifier):
    """Online bagging ensemble.

    Parameters
    ----------
    n_estimators:
        Number of ensemble members (the paper uses 3 weak learners).
    base_estimator_factory:
        Callable returning a fresh :class:`StreamClassifier`; defaults to a
        VFDT with majority-class leaves, matching the paper's configuration.
    poisson_lambda:
        Rate of the Poisson re-weighting (1.0 for classic online bagging,
        6.0 for Leveraging Bagging).
    random_state:
        Seed controlling the Poisson draws.
    """

    def __init__(
        self,
        n_estimators: int = 3,
        base_estimator_factory: Callable[[], StreamClassifier] | None = None,
        poisson_lambda: float = 1.0,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators!r}.")
        check_positive(poisson_lambda, "poisson_lambda")
        self.n_estimators = int(n_estimators)
        self.base_estimator_factory = (
            base_estimator_factory
            if base_estimator_factory is not None
            else HoeffdingTreeClassifier
        )
        self.poisson_lambda = float(poisson_lambda)
        self.random_state = random_state
        self._rng = check_random_state(random_state)
        self.estimators_: list[StreamClassifier] = [
            self.base_estimator_factory() for _ in range(self.n_estimators)
        ]

    # -------------------------------------------------------------- fitting
    def reset(self) -> "OzaBaggingClassifier":
        self.classes_ = None
        self.n_features_ = None
        self._rng = check_random_state(self.random_state)
        self.estimators_ = [
            self.base_estimator_factory() for _ in range(self.n_estimators)
        ]
        return self

    def partial_fit(
        self, X: np.ndarray, y: np.ndarray, classes: np.ndarray | None = None
    ) -> "OzaBaggingClassifier":
        X, y = self._validate_input(X, y)
        self._update_classes(y, classes)
        for estimator_idx, estimator in enumerate(self.estimators_):
            weights = self._sample_weights(len(X), estimator_idx)
            repeat = weights.astype(int)
            mask = repeat > 0
            if not np.any(mask):
                continue
            X_rep = np.repeat(X[mask], repeat[mask], axis=0)
            y_rep = np.repeat(y[mask], repeat[mask], axis=0)
            estimator.partial_fit(X_rep, y_rep, classes=self.classes_)
        return self

    def _sample_weights(self, n: int, estimator_idx: int) -> np.ndarray:
        """Poisson weights for one estimator on the current batch."""
        return self._rng.poisson(self.poisson_lambda, size=n)

    # ------------------------------------------------------------ inference
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X, _ = self._validate_input(X)
        if self.classes_ is None:
            raise RuntimeError("predict_proba() called before partial_fit().")
        votes = np.zeros((len(X), self.n_classes_))
        for estimator in self.estimators_:
            if estimator.classes_ is None:
                continue
            proba = estimator.predict_proba(X)
            # Align the member's class space with the ensemble's.
            member_classes = estimator.classes_
            for column, label in enumerate(member_classes):
                target = np.searchsorted(self.classes_, label)
                if target < self.n_classes_ and self.classes_[target] == label:
                    votes[:, target] += proba[:, column]
        row_sums = votes.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        return votes / row_sums

    # ------------------------------------------------------- interpretability
    def complexity(self) -> ComplexityReport:
        report = ComplexityReport(n_splits=0, n_parameters=0)
        for estimator in self.estimators_:
            report = report + estimator.complexity()
        return report
