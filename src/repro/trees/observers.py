"""Attribute observers used by the Hoeffding-tree family.

An attribute observer summarises the joint distribution of one feature and
the class label at a leaf and proposes binary split points.  Numeric features
use a per-class Gaussian estimator (the standard VFDT approach); nominal
features use per-value class counts.  The paper restricts all trees to binary
splits, so both observers only emit binary suggestions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trees.criteria import SplitCriterion, VarianceReductionCriterion


@dataclass
class SplitSuggestion:
    """A candidate binary split of one feature."""

    feature: int
    threshold: float
    merit: float
    children_dists: list[np.ndarray] = field(default_factory=list)
    is_nominal: bool = False

    def route_left(self, value: float) -> bool:
        """Return whether a feature value goes to the left branch."""
        if self.is_nominal:
            return value == self.threshold
        return value <= self.threshold


class GaussianEstimator:
    """Incremental univariate Gaussian with Welford moment updates."""

    __slots__ = ("weight", "mean", "_m2")

    def __init__(self) -> None:
        self.weight = 0.0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, value: float, weight: float = 1.0) -> None:
        if weight <= 0:
            return
        self.weight += weight
        delta = value - self.mean
        self.mean += weight * delta / self.weight
        self._m2 += weight * delta * (value - self.mean)

    @property
    def variance(self) -> float:
        if self.weight <= 1.0:
            return 0.0
        return max(self._m2 / (self.weight - 1.0), 0.0)

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    def cdf(self, value: float) -> float:
        """Probability mass of the Gaussian at or below ``value``."""
        if self.weight == 0:
            return 0.0
        std = self.std
        if std == 0.0:
            return 1.0 if value >= self.mean else 0.0
        z = (value - self.mean) / (std * np.sqrt(2.0))
        return float(0.5 * (1.0 + _erf(z)))

    def weight_below(self, value: float) -> float:
        """Estimated weight of observations with values at or below ``value``."""
        return self.weight * self.cdf(value)


def _erf(z: float) -> float:
    """Error function via Abramowitz-Stegun approximation (vector-safe)."""
    sign = np.sign(z)
    z = abs(z)
    t = 1.0 / (1.0 + 0.3275911 * z)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return float(sign * (1.0 - poly * np.exp(-z * z)))


class GaussianAttributeObserver:
    """Per-class Gaussian observer for one numeric feature.

    Parameters
    ----------
    n_split_points:
        Number of candidate thresholds evaluated between the observed minimum
        and maximum of the feature (the VFDT default of 10 is used throughout
        the paper's baselines).
    """

    def __init__(self, n_split_points: int = 10) -> None:
        if n_split_points < 1:
            raise ValueError(
                f"n_split_points must be >= 1, got {n_split_points!r}."
            )
        self.n_split_points = int(n_split_points)
        self._per_class: dict[int, GaussianEstimator] = {}
        self._min_value = np.inf
        self._max_value = -np.inf

    @property
    def total_weight(self) -> float:
        return float(sum(est.weight for est in self._per_class.values()))

    def update(self, value: float, class_idx: int, weight: float = 1.0) -> None:
        estimator = self._per_class.setdefault(int(class_idx), GaussianEstimator())
        estimator.update(float(value), weight)
        self._min_value = min(self._min_value, float(value))
        self._max_value = max(self._max_value, float(value))

    # ----------------------------------------------------- classification
    def _candidate_thresholds(self) -> np.ndarray:
        if not np.isfinite(self._min_value) or self._max_value <= self._min_value:
            return np.array([])
        return np.linspace(self._min_value, self._max_value, self.n_split_points + 2)[
            1:-1
        ]

    def class_dists_below(self, threshold: float, n_classes: int) -> np.ndarray:
        """Estimated class distribution of values at or below ``threshold``."""
        dist = np.zeros(n_classes)
        for class_idx, estimator in self._per_class.items():
            if class_idx < n_classes:
                dist[class_idx] = estimator.weight_below(threshold)
        return dist

    def class_dist(self, n_classes: int) -> np.ndarray:
        dist = np.zeros(n_classes)
        for class_idx, estimator in self._per_class.items():
            if class_idx < n_classes:
                dist[class_idx] = estimator.weight
        return dist

    def best_split_suggestion(
        self,
        criterion: SplitCriterion,
        pre_split: np.ndarray,
        feature: int,
    ) -> SplitSuggestion | None:
        """Best binary threshold split of this feature according to ``criterion``."""
        thresholds = self._candidate_thresholds()
        if thresholds.size == 0:
            return None
        n_classes = len(pre_split)
        observed = self.class_dist(n_classes)
        best: SplitSuggestion | None = None
        for threshold in thresholds:
            left = self.class_dists_below(threshold, n_classes)
            right = np.maximum(observed - left, 0.0)
            merit = criterion.merit(pre_split, [left, right])
            if best is None or merit > best.merit:
                best = SplitSuggestion(
                    feature=feature,
                    threshold=float(threshold),
                    merit=float(merit),
                    children_dists=[left, right],
                )
        return best

    # --------------------------------------------------------- regression
    def target_stats_split(
        self, threshold: float
    ) -> tuple[tuple[float, float, float], tuple[float, float, float]]:
        """(count, sum, sum_sq) of the numeric target left / right of ``threshold``.

        Used by the FIMT-DD classification adaptation, which treats the class
        index as a numeric target: the per-class Gaussian estimators give the
        estimated count of each class on either side of the threshold.
        """
        left = np.zeros(3)
        right = np.zeros(3)
        for class_idx, estimator in self._per_class.items():
            weight_left = estimator.weight_below(threshold)
            weight_right = estimator.weight - weight_left
            left += np.array(
                [weight_left, weight_left * class_idx, weight_left * class_idx**2]
            )
            right += np.array(
                [
                    weight_right,
                    weight_right * class_idx,
                    weight_right * class_idx**2,
                ]
            )
        return tuple(left), tuple(right)

    def best_sdr_suggestion(
        self, criterion: VarianceReductionCriterion, feature: int
    ) -> SplitSuggestion | None:
        """Best threshold according to standard-deviation reduction."""
        thresholds = self._candidate_thresholds()
        if thresholds.size == 0:
            return None
        total = np.zeros(3)
        for class_idx, estimator in self._per_class.items():
            total += np.array(
                [
                    estimator.weight,
                    estimator.weight * class_idx,
                    estimator.weight * class_idx**2,
                ]
            )
        best: SplitSuggestion | None = None
        for threshold in thresholds:
            left, right = self.target_stats_split(threshold)
            merit = criterion.merit(tuple(total), [left, right])
            if best is None or merit > best.merit:
                best = SplitSuggestion(
                    feature=feature, threshold=float(threshold), merit=float(merit)
                )
        return best


class NominalAttributeObserver:
    """Per-value class counts for one nominal feature.

    Emits binary "value == v versus rest" suggestions because the paper
    restricts every tree to binary splits.
    """

    def __init__(self) -> None:
        self._counts: dict[float, dict[int, float]] = {}

    @property
    def total_weight(self) -> float:
        return float(
            sum(sum(class_counts.values()) for class_counts in self._counts.values())
        )

    def update(self, value: float, class_idx: int, weight: float = 1.0) -> None:
        value_counts = self._counts.setdefault(float(value), {})
        value_counts[int(class_idx)] = value_counts.get(int(class_idx), 0.0) + weight

    def class_dist_for_value(self, value: float, n_classes: int) -> np.ndarray:
        dist = np.zeros(n_classes)
        for class_idx, weight in self._counts.get(float(value), {}).items():
            if class_idx < n_classes:
                dist[class_idx] = weight
        return dist

    def best_split_suggestion(
        self,
        criterion: SplitCriterion,
        pre_split: np.ndarray,
        feature: int,
    ) -> SplitSuggestion | None:
        if len(self._counts) < 2:
            return None
        n_classes = len(pre_split)
        observed = np.zeros(n_classes)
        for value in self._counts:
            observed += self.class_dist_for_value(value, n_classes)
        best: SplitSuggestion | None = None
        for value in self._counts:
            left = self.class_dist_for_value(value, n_classes)
            right = np.maximum(observed - left, 0.0)
            merit = criterion.merit(pre_split, [left, right])
            if best is None or merit > best.merit:
                best = SplitSuggestion(
                    feature=feature,
                    threshold=float(value),
                    merit=float(merit),
                    children_dists=[left, right],
                    is_nominal=True,
                )
        return best
