"""Generator for the pinned metric/span/event-kind inventory.

``python -m repro.analysis --regen-inventory`` statically collects every
literal metric name (``counter``/``gauge``/``histogram`` call sites plus
``repro.*`` module constants), every literal span name, and the event-kind
catalogue from :mod:`repro.telemetry.events`' ``SCHEMAS``, then rewrites
:mod:`repro.analysis.inventory`.  The inventory is deliberately a checked-in
artefact: adding a time series to the system is a reviewed change, not a
side effect of a stray call site.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.core import Project

_EVENTS_REL = "repro/telemetry/events.py"
_METRIC_CALLS = frozenset({"counter", "gauge", "histogram"})

_HEADER = '''"""Pinned metric/span/event-kind inventory (generated file).

Regenerate with ``python -m repro.analysis --regen-inventory`` after adding
a metric, span, or event kind; the metric-naming checker (MET002-MET004)
treats any name outside this catalogue as a typo.
"""

from __future__ import annotations

'''


def collect_inventory(
    project: Project,
) -> tuple[frozenset[str], frozenset[str], frozenset[str]]:
    """Statically harvest (metric names, span names, event kinds)."""
    metrics: set[str] = set()
    spans: set[str] = set()
    for module in project.modules:
        if module.layer == "analysis":
            continue
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                    and stmt.value.value.startswith("repro.")
                ):
                    metrics.add(stmt.value.value)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            ):
                continue
            arg = node.args[0] if node.args else None
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                continue
            if node.func.attr in _METRIC_CALLS:
                metrics.add(arg.value)
            elif node.func.attr == "span":
                spans.add(arg.value)
    return frozenset(metrics), frozenset(spans), frozenset(_event_kinds(project))


def _event_kinds(project: Project) -> set[str]:
    """Event kinds: the keys of ``SCHEMAS`` in repro.telemetry.events."""
    kinds: set[str] = set()
    events = project.module(_EVENTS_REL)
    if events is None:
        return kinds
    constants: dict[str, str] = {}
    for stmt in events.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if (
                isinstance(target, ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                constants[target.id] = stmt.value.value
    for stmt in events.tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        if not any(
            isinstance(target, ast.Name) and target.id == "SCHEMAS"
            for target in targets
        ):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        kinds.add(key.value)
                    elif isinstance(key, ast.Name) and key.id in constants:
                        kinds.add(constants[key.id])
    return kinds


def render_inventory(
    metrics: frozenset[str], spans: frozenset[str], events: frozenset[str]
) -> str:
    def block(name: str, values: frozenset[str]) -> str:
        if not values:
            return f"{name}: frozenset[str] = frozenset()\n"
        items = "".join(f'        "{value}",\n' for value in sorted(values))
        return f"{name}: frozenset[str] = frozenset(\n    (\n{items}    )\n)\n"

    return (
        _HEADER
        + block("METRIC_NAMES", metrics)
        + "\n"
        + block("SPAN_NAMES", spans)
        + "\n"
        + block("EVENT_KINDS", events)
    )


def write_inventory(project: Project, path: Path | None = None) -> Path:
    """Regenerate the inventory module next to this package (or at ``path``)."""
    if path is None:
        path = Path(__file__).resolve().parent / "inventory.py"
    metrics, spans, events = collect_inventory(project)
    path.write_text(render_inventory(metrics, spans, events), encoding="utf-8")
    return path
