"""CPY -- copy/validation discipline on the hot paths.

The zero-copy batch path (ROADMAP item 5) starts with a map of where
arrays are redundantly copied or re-validated today.  This pass is that
map, as a lint rule: using the dataflow engine's local fresh/validated
tracking plus the call graph, it flags validation work whose input is
provably already validated (or freshly owned) somewhere upstream.

``CPY001`` fires in two shapes:

* **fresh re-validation** -- ``np.asarray(x)`` / ``x.copy()`` applied to
  a value the local dataflow already proved freshly owned (the result of
  ``np.array``/``.copy()``/a constructor that only returns fresh arrays);
* **redundant defensive parameter validation** -- ``X = np.asarray(X)``
  on a parameter whose every later use either re-validates it downstream
  (a resolved callee that runs its own ``asarray``, or a
  ``predict``/``predict_proba``/``partial_fit`` contract call), or is a
  shape/len/slice read that works on the un-validated value too.

The rule is restricted to the serving/evaluation/streams layers -- the
stream -> scenario -> model -> evaluator pipeline -- because model-layer
``asarray`` calls *are* the downstream validation the rule credits.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import Checker, Finding, Project, Rule

#: Layers whose functions are hot-path *callers* (their inputs reach a
#: validating model/metric boundary downstream).
HOT_LAYERS = frozenset({"serving", "evaluation", "streams"})


def _short(qualname: str) -> str:
    return ".".join(qualname.rsplit(".", 2)[-2:])


class CopyDisciplineChecker(Checker):
    name = "copy-discipline"
    rules = (
        Rule(
            "CPY001",
            "redundant array copy/validation on a hot path",
            "ROADMAP item 5 (zero-copy batch path): asarray/copy applied "
            "to a value that is provably already validated or freshly "
            "owned burns memory bandwidth for nothing",
        ),
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.dataflow import shared_engine

        engine = shared_engine(project)
        for qualname in sorted(engine.summaries):
            fn = engine.graph.functions[qualname]
            if fn.module.layer not in HOT_LAYERS:
                continue
            for reval in engine.summaries[qualname].revalidations:
                if reval.source == "fresh":
                    message = (
                        f"'{reval.name}' in {_short(qualname)} is already "
                        f"a freshly-owned array here; the {reval.via} "
                        "re-validation is a redundant copy/pass"
                    )
                elif reval.source == "param" and reval.uses_safe:
                    message = (
                        f"parameter '{reval.name}' of {_short(qualname)} "
                        f"is re-validated via {reval.via}, but every "
                        "downstream use validates it again (or needs no "
                        "ndarray); drop the defensive copy"
                    )
                else:
                    continue
                yield Finding(
                    path=fn.module.rel,
                    line=reval.line,
                    col=reval.col,
                    rule="CPY001",
                    message=message,
                )
