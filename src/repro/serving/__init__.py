"""Model serving: registry, batched scoring and champion/challenger rollout.

The serving layer turns persisted stream learners into a deployable unit:

* :class:`ModelRegistry` -- named, versioned models with atomic hot-swap,
* :class:`ScoringService` -- batched ``predict`` / ``predict_proba`` across
  registered models with per-model latency and throughput counters,
* :class:`ChampionChallenger` -- shadow-scores a challenger on live traffic
  and promotes it when a drift detector fires on the champion's errors.

See ``examples/serving_hot_swap.py`` for the end-to-end workflow.
"""

from repro.serving.deployment import ChampionChallenger
from repro.serving.registry import ModelRegistry, ModelVersion
from repro.serving.service import ScoringService, ScoringStats, ScoringStatsArchive

__all__ = [
    "ChampionChallenger",
    "ModelRegistry",
    "ModelVersion",
    "ScoringService",
    "ScoringStats",
    "ScoringStatsArchive",
]
