"""Incremental simple models: generalized linear models and Naive Bayes.

These are the "simple models" of the Dynamic Model Tree (Section V-A of the
paper) and the leaf predictors of the FIMT-DD baseline and the VFDT(NBA)
baseline.
"""

from repro.linear.glm import IncrementalGLM
from repro.linear.naive_bayes import GaussianNaiveBayes

__all__ = ["IncrementalGLM", "GaussianNaiveBayes"]
