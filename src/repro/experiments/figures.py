"""Regeneration of the paper's figures (Figures 3 and 4).

Figures are produced as plain data series (dictionaries of numpy arrays) so
the benchmarks can print / assert on them without a plotting dependency; an
optional text rendering gives a quick visual check in the terminal.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import (
    FIGURE3_DATASETS,
    MODEL_REGISTRY,
    get_dataset_spec,
)
from repro.experiments.runner import ExperimentSuite


def figure3_series(
    suite: ExperimentSuite,
    datasets: tuple[str, ...] = FIGURE3_DATASETS,
    window: int = 20,
) -> dict[str, dict[str, dict[str, np.ndarray]]]:
    """Figure 3: sliding-window F1 and log(#splits) traces per model.

    Returns ``{dataset: {model: {"f1_mean", "f1_std", "log_splits_mean",
    "log_splits_std"}}}`` with one entry per prequential iteration, matching
    the panels (a)-(h) of the paper.
    """
    series: dict[str, dict[str, dict[str, np.ndarray]]] = {}
    for dataset_key in datasets:
        if dataset_key not in suite.dataset_names:
            continue
        series[dataset_key] = {}
        for model_key in suite.model_names:
            if MODEL_REGISTRY[model_key].group != "standalone":
                continue
            result = suite.get(model_key, dataset_key)
            f1_mean, f1_std = result.windowed_f1(window)
            splits_mean, splits_std = result.windowed_log_splits(window)
            series[dataset_key][model_key] = {
                "f1_mean": f1_mean,
                "f1_std": f1_std,
                "log_splits_mean": splits_mean,
                "log_splits_std": splits_std,
            }
    return series


def figure4_points(suite: ExperimentSuite) -> list[dict]:
    """Figure 4: (avg log #splits, avg F1) scatter point per model and data set."""
    points = []
    for model_key in suite.model_names:
        if MODEL_REGISTRY[model_key].group != "standalone":
            continue
        for dataset_key in suite.dataset_names:
            result = suite.get(model_key, dataset_key)
            points.append(
                {
                    "model": MODEL_REGISTRY[model_key].display_name,
                    "model_key": model_key,
                    "dataset": get_dataset_spec(dataset_key).display_name,
                    "dataset_key": dataset_key,
                    "avg_log_splits": float(
                        np.log(max(result.n_splits_mean, 1e-9))
                    ),
                    "avg_f1": float(result.f1_mean),
                }
            )
    return points


def render_figure4_text(points: list[dict], width: int = 60, height: int = 20) -> str:
    """ASCII rendering of the Figure 4 scatter (complexity vs. F1)."""
    if not points:
        return "(no points)"
    xs = np.array([point["avg_log_splits"] for point in points])
    ys = np.array([point["avg_f1"] for point in points])
    x_low, x_high = xs.min(), xs.max()
    y_low, y_high = ys.min(), ys.max()
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" " for _ in range(width)] for _ in range(height)]
    markers = {}
    for point in points:
        marker = point["model"][0]
        markers[marker] = point["model"]
        col = int((point["avg_log_splits"] - x_low) / x_span * (width - 1))
        row = int((1.0 - (point["avg_f1"] - y_low) / y_span) * (height - 1))
        grid[row][col] = marker
    lines = ["Figure 4: Avg. F1 vs. Avg. log(No. of Splits)"]
    lines.extend("".join(row) for row in grid)
    lines.append(
        "x: log(#splits) "
        f"[{x_low:.2f}, {x_high:.2f}]  y: F1 [{y_low:.2f}, {y_high:.2f}]"
    )
    legend = ", ".join(f"{marker}={name}" for marker, name in sorted(markers.items()))
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
