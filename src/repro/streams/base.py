"""Base data-stream abstractions.

A :class:`Stream` produces observations in order; the prequential evaluator
consumes it in mini-batches of a fixed fraction of the stream (0.1% in the
paper).  Streams are finite here because every evaluated data set has a known
length, but the API mirrors a potentially infinite source.

:class:`SeededStream` is the deterministic backbone of every random
generator in this package: randomness is drawn block-wise from counter-based
seed sequences, which makes ``_generate(start, count)`` a pure function of
the stream parameters and the row indices.  Two consequences the rest of the
system relies on:

* **Chunk invariance** -- consuming a stream in any schedule of batch sizes
  yields the bit-identical trace as materialising it in one call, so the
  prequential batch fraction never changes the data itself.
* **Restart determinism** -- :meth:`Stream.restart` reproduces the identical
  trace, even for streams created with ``seed=None`` (a random entropy is
  drawn once at construction and kept).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np

from repro.persistence.mixin import PersistableStateMixin
from repro.telemetry import TELEMETRY


class Stream(PersistableStateMixin, ABC):
    """A finite, ordered source of ``(X, y)`` observations."""

    def __init__(self, n_samples: int, n_features: int, n_classes: int) -> None:
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples!r}.")
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features!r}.")
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes!r}.")
        self.n_samples = int(n_samples)
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)
        self._position = 0

    # ------------------------------------------------------------------ API
    @abstractmethod
    def _generate(self, start: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Produce ``count`` observations starting at index ``start``."""

    def next_sample(self, batch_size: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Return the next batch of at most ``batch_size`` observations."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size!r}.")
        count = min(batch_size, self.n_remaining_samples())
        if count == 0:
            raise StopIteration("The stream is exhausted.")
        X, y = self._generate(self._position, count)
        self._position += count
        return X, y

    def has_more_samples(self) -> bool:
        return self._position < self.n_samples

    def n_remaining_samples(self) -> int:
        return self.n_samples - self._position

    @property
    def position(self) -> int:
        return self._position

    def restart(self) -> "Stream":
        self._position = 0
        return self

    @property
    def classes(self) -> np.ndarray:
        return np.arange(self.n_classes)

    # ------------------------------------------------------------ materialise
    def take(self, n: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Materialise up to ``n`` observations (all remaining by default)."""
        count = self.n_remaining_samples() if n is None else min(n, self.n_remaining_samples())
        if count == 0:
            return np.empty((0, self.n_features)), np.empty(0, dtype=int)
        return self.next_sample(count)

    def peek_rows(self, start: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Read rows by index without consuming the stream.

        May return views into internal caches (see the
        :class:`SeededStream` override): callers must treat the arrays as
        read-only.  The base implementation simply delegates to
        ``_generate``, which is required to be position-independent for
        every stream that participates in scenario composition.
        """
        return self._generate(start, count)


class _LazyBlockRng:
    """Deferred per-block generator: built on the first actual draw.

    Forwards every attribute to the real :class:`numpy.random.Generator`,
    constructing it only when touched -- so blocks whose generation turns
    out to be fully deterministic never pay the ~20us construction cost.
    """

    __slots__ = ("_stream", "_block", "_rng")

    def __init__(self, stream: "SeededStream", block: int) -> None:
        self._stream = stream
        self._block = block
        self._rng = None

    def __getattr__(self, name: str) -> object:
        if self._rng is None:
            self._rng = self._stream.block_rng(self._block)
        return getattr(self._rng, name)


class SeededStream(Stream):
    """Deterministic random stream built from counter-based blocks.

    Rows are produced in fixed-size blocks of :attr:`block_size`; the
    randomness of block ``b`` comes from a generator derived from
    ``(entropy, channel, b)`` via :class:`numpy.random.SeedSequence`, so the
    values of row ``i`` depend only on the stream parameters and ``i`` --
    never on how the stream has been consumed so far.  This makes every
    subclass chunk-invariant and restart-deterministic by construction.

    Subclasses implement :meth:`_generate_block` (vectorised over one
    block).  Streams whose concept evolves sequentially (e.g. the rotating
    hyperplane) set ``stateful = True`` and thread an explicit state value
    through ``_generate_block``; block-boundary states are cached so forward
    consumption stays O(rows).

    ``seed=None`` draws a random entropy once at construction; the stream is
    then still deterministic under :meth:`restart` and serialisation.
    """

    #: Number of rows generated per counter block.  Large enough to amortise
    #: the per-block generator construction (~20us), small enough that a
    #: cached block of a wide stream stays well under a megabyte.
    block_size = 1024

    #: Whether block generation threads a sequential state value.
    stateful = False

    #: RNG channel of per-row block draws.
    CHANNEL_ROWS = 0
    #: RNG channel of one-off concept/setup draws.
    CHANNEL_SETUP = 1

    #: Attributes skipped by the persistence codec and rebuilt by
    #: :meth:`_init_transient` (pure caches, cheap to regenerate).
    _repro_transient = ("_block_cache", "_boundary_states", "_rng_cache")

    def __init__(
        self,
        n_samples: int,
        n_features: int,
        n_classes: int,
        seed: int | None = None,
    ) -> None:
        super().__init__(
            n_samples=n_samples, n_features=n_features, n_classes=n_classes
        )
        self.seed = None if seed is None else int(seed)
        self._entropy = (
            # Deliberate one-time OS-entropy draw: seed=None streams stay
            # deterministic under restart()/persistence because the entropy
            # is drawn once here and kept. repro-lint: disable=RNG002
            int(np.random.SeedSequence().entropy) if seed is None else int(seed)
        )
        self._init_transient()

    # ------------------------------------------------------------------- rng
    def _init_transient(self) -> None:
        """(Re)create the transient caches (also called after decoding)."""
        self._block_cache: tuple[int, np.ndarray, np.ndarray] | None = None
        self._boundary_states: dict[int, object] = {}
        self._rng_cache: dict[int, tuple] = {}

    def block_rng(self, block: int, channel: int = 0) -> np.random.Generator:
        """Generator of the counter-based RNG stream ``(channel, block)``.

        One Philox generator is kept per ``channel`` and jumped to the
        block's counter on each call (constructing a fresh bit generator
        costs ~14us; resetting the counter ~4us, which matters at a
        thousand rows per block).  The returned generator is therefore
        shared: draws for one block must finish before the next
        ``block_rng`` call on the same stream, which the sequential block
        machinery guarantees.
        """
        entry = self._rng_cache.get(channel)
        if entry is None:
            key = np.random.SeedSequence(
                self._entropy, spawn_key=(channel,)
            ).generate_state(2, np.uint64)
            bit_generator = np.random.Philox(key=key)
            entry = (bit_generator, np.random.Generator(bit_generator), key)
            self._rng_cache[channel] = entry
        bit_generator, generator, key = entry
        bit_generator.state = {
            "bit_generator": "Philox",
            "state": {
                "counter": np.array([0, 0, block, 0], dtype=np.uint64),
                "key": key,
            },
            "buffer": np.zeros(4, dtype=np.uint64),
            "buffer_pos": 4,
            "has_uint32": 0,
            "uinteger": 0,
        }
        return generator

    def _lazy_block_rng(self, block: int) -> "_LazyBlockRng":
        """Proxy that defers generator construction until a draw is made.

        Constructing a bit generator costs ~20us; blocks that turn out to
        need no randomness (an inactive corruption window, a deterministic
        transform) skip it entirely without changing any draw a block that
        *does* use randomness would make.
        """
        return _LazyBlockRng(self, block)

    def setup_rng(self) -> np.random.Generator:
        """Generator for one-off concept draws (centroids, prototypes, ...)."""
        return self.block_rng(0, channel=self.CHANNEL_SETUP)

    # ----------------------------------------------------------------- hooks
    def _initial_state(self) -> object:
        """Sequential state before row 0 (stateful streams only)."""
        return None

    @abstractmethod
    def _generate_block(
        self, rng: np.random.Generator, start: int, count: int, state: object
    ) -> tuple[np.ndarray, np.ndarray, object]:
        """Produce one whole block ``[start, start + count)``.

        ``state`` is the sequential state at ``start`` (``None`` for
        stateless streams); the third return value is the state after the
        block (ignored for stateless streams).  The number and order of RNG
        draws may depend on the stream parameters but never on ``state`` or
        on previous calls.
        """

    # ------------------------------------------------------------ block plan
    def _block_row_count(self, block: int) -> int:
        return min(self.block_size, self.n_samples - block * self.block_size)

    def _state_for_block(self, block: int) -> object:
        if not self.stateful:
            return None
        states = self._boundary_states
        if 0 not in states:
            states[0] = self._initial_state()
        known = max(index for index in states if index <= block)
        state = states[known]
        for replay in range(known, block):
            _, _, state = self._generate_block(
                self.block_rng(replay),
                replay * self.block_size,
                self._block_row_count(replay),
                state,
            )
            states[replay + 1] = state
        return state

    def _block(self, block: int) -> tuple[np.ndarray, np.ndarray]:
        cached = self._block_cache
        if cached is not None and cached[0] == block:
            return cached[1], cached[2]
        with TELEMETRY.span("stream.generate_block"):
            state = self._state_for_block(block)
            X, y, next_state = self._generate_block(
                self._lazy_block_rng(block),
                block * self.block_size,
                self._block_row_count(block),
                state,
            )
            if self.stateful:
                self._boundary_states[block + 1] = next_state
        self._block_cache = (block, X, y)
        return X, y

    # ------------------------------------------------------------- assembly
    def peek_rows(self, start: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Rows ``[start, start + count)`` without the defensive copy.

        The returned arrays may be views into the internal block cache:
        callers must treat them as read-only.  Used by the scenario
        transforms, whose non-mutating layers would otherwise copy every
        block once per layer; external consumers should call
        :meth:`next_sample` / :meth:`take` (or ``_generate``), which always
        return fresh arrays.
        """
        if count <= 0:
            return np.empty((0, self.n_features)), np.empty(0, dtype=int)
        if start < 0 or start + count > self.n_samples:
            raise ValueError(
                f"Requested rows [{start}, {start + count}) outside the "
                f"stream of length {self.n_samples}."
            )
        size = self.block_size
        first, last = start // size, (start + count - 1) // size
        X_parts: list[np.ndarray] = []
        y_parts: list[np.ndarray] = []
        for block in range(first, last + 1):
            X_block, y_block = self._block(block)
            lo = max(start - block * size, 0)
            hi = min(start + count - block * size, len(y_block))
            X_parts.append(X_block[lo:hi])
            y_parts.append(y_block[lo:hi])
        if len(X_parts) == 1:
            return X_parts[0], y_parts[0]
        return np.concatenate(X_parts), np.concatenate(y_parts)

    def _generate(self, start: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        X, y = self.peek_rows(start, count)
        # Fresh arrays: the peeked rows may alias the block cache, and
        # callers (evaluators, preprocessing, transforms) may mutate them.
        if X.base is not None or y.base is not None:
            return X.copy(), y.copy()
        return X, y


class ArrayStream(Stream):
    """Stream backed by in-memory arrays (used for real data and tests)."""

    def __init__(self, X: np.ndarray, y: np.ndarray) -> None:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}.")
        if len(X) != len(y):
            raise ValueError("X and y have inconsistent lengths.")
        classes = np.unique(y)
        super().__init__(
            n_samples=len(X), n_features=X.shape[1], n_classes=max(len(classes), 2)
        )
        self._X = X
        self._y = y
        self._classes = classes

    @property
    def classes(self) -> np.ndarray:
        return self._classes

    def _generate(self, start: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        return (
            self._X[start : start + count].copy(),
            self._y[start : start + count].copy(),
        )


def drift_offsets(
    drift_positions: tuple[float, ...], indices: np.ndarray, n_samples: int
) -> np.ndarray:
    """Number of passed drift positions (stream fractions) per stream index.

    The shared "how many concept switches happened by row ``i``" primitive
    of the drifting generators (SEA, STAGGER, Sine, Mixed, LED): a drift
    position ``p`` is passed once ``i / n_samples >= p``.
    """
    fractions = np.asarray(indices, dtype=float) / n_samples
    return np.searchsorted(np.asarray(drift_positions), fractions, side="right")


def prequential_batches(
    stream: Stream,
    batch_fraction: float = 0.001,
    batch_size: int | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield test-then-train batches from a stream.

    The paper processes batches of 0.1% of the data per prequential
    iteration; pass ``batch_size`` to override the fraction with an absolute
    size.
    """
    if batch_size is None:
        if not 0.0 < batch_fraction <= 1.0:
            raise ValueError(
                f"batch_fraction must be in (0, 1], got {batch_fraction!r}."
            )
        batch_size = max(int(round(stream.n_samples * batch_fraction)), 1)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size!r}.")
    while stream.has_more_samples():
        yield stream.next_sample(batch_size)
