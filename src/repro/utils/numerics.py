"""Low-level numeric helpers shared by the vectorized training paths.

The batched tree-training code must sometimes *predict* the value a numpy
reduction will produce without materialising intermediate arrays -- e.g. the
total leaf weight after each hypothetical row of a chunk, which gates split
attempts.  numpy sums floats with pairwise (blocked) summation, so a naive
Python ``sum`` over the same values can differ in the last ulp once the
array is long enough.  :func:`np_pairwise_sum` replicates numpy's pairwise
reduction exactly (same block structure, same accumulation order), so scalar
simulations stay bit-identical to ``ndarray.sum()``.
"""

from __future__ import annotations

#: numpy's pairwise-summation block size (``PW_BLOCKSIZE`` in loops.c).
_PW_BLOCKSIZE = 128


def np_pairwise_sum(values: list[float], start: int = 0, n: int | None = None) -> float:
    """Sum ``values[start:start + n]`` exactly like ``np.sum`` of a float64 array.

    Replicates numpy's pairwise summation: sequential accumulation below 8
    elements, an 8-way unrolled accumulator block up to 128 elements and a
    recursive halving (rounded down to a multiple of 8) beyond that.
    """
    if n is None:
        n = len(values) - start
    if n < 8:
        result = 0.0
        for index in range(start, start + n):
            result += values[index]
        return result
    if n <= _PW_BLOCKSIZE:
        r0 = values[start]
        r1 = values[start + 1]
        r2 = values[start + 2]
        r3 = values[start + 3]
        r4 = values[start + 4]
        r5 = values[start + 5]
        r6 = values[start + 6]
        r7 = values[start + 7]
        index = 8
        while index < n - (n % 8):
            base = start + index
            r0 += values[base]
            r1 += values[base + 1]
            r2 += values[base + 2]
            r3 += values[base + 3]
            r4 += values[base + 4]
            r5 += values[base + 5]
            r6 += values[base + 6]
            r7 += values[base + 7]
            index += 8
        result = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while index < n:
            result += values[start + index]
            index += 1
        return result
    half = n // 2
    half -= half % 8
    return np_pairwise_sum(values, start, half) + np_pairwise_sum(
        values, start + half, n - half
    )
