"""Tests for the DMT node: statistics, structure changes, routing."""

import numpy as np
import pytest

from repro.core.nodes import DMTNode
from repro.linear.glm import IncrementalGLM
from tests.conftest import make_linear_binary


def _make_node(n_features=3, n_classes=2, seed=0):
    model = IncrementalGLM(
        n_features=n_features, n_classes=n_classes, learning_rate=0.05, rng=seed
    )
    return DMTNode(
        model=model,
        n_features=n_features,
        max_candidates=3 * n_features,
        replacement_rate=0.5,
        max_values_per_feature=10,
    )


class TestStatistics:
    def test_fresh_node_is_leaf_with_zero_statistics(self):
        node = _make_node()
        assert node.is_leaf
        assert node.loss == 0.0
        assert node.count == 0.0
        assert node.split_key is None

    def test_update_accumulates_loss_gradient_count(self):
        node = _make_node()
        X, y = make_linear_binary(50, n_features=3)
        expected_loss = node.model.negative_log_likelihood(X, y)
        expected_grad = node.model.gradient(X, y)
        node.update_statistics(X, y, learning_rate=0.05)
        assert node.loss == pytest.approx(expected_loss)
        np.testing.assert_allclose(node.gradient, expected_grad)
        assert node.count == 50

    def test_update_changes_model_weights(self):
        node = _make_node()
        X, y = make_linear_binary(50, n_features=3)
        before = node.model.weights.copy()
        node.update_statistics(X, y, learning_rate=0.05)
        assert not np.allclose(before, node.model.weights)

    def test_statistics_accumulate_across_batches(self):
        node = _make_node()
        X, y = make_linear_binary(60, n_features=3)
        node.update_statistics(X[:30], y[:30], learning_rate=0.05)
        first_loss = node.loss
        node.update_statistics(X[30:], y[30:], learning_rate=0.05)
        assert node.loss > first_loss
        assert node.count == 60

    def test_candidates_are_collected(self):
        node = _make_node()
        X, y = make_linear_binary(80, n_features=3)
        node.update_statistics(X, y, learning_rate=0.05)
        assert len(node.candidates) > 0
        assert len(node.candidates) <= node.candidates.max_candidates


class TestStructure:
    def _trained_node_with_candidate(self):
        node = _make_node(seed=1)
        X, y = make_linear_binary(200, n_features=3, seed=1)
        for start in range(0, 200, 40):
            node.update_statistics(X[start : start + 40], y[start : start + 40], 0.05)
        candidate, gain = node.best_split(learning_rate=0.05)
        return node, candidate, gain

    def test_apply_split_creates_two_leaves(self):
        node, candidate, _ = self._trained_node_with_candidate()
        assert candidate is not None
        node.apply_split(candidate)
        assert not node.is_leaf
        assert node.left.is_leaf and node.right.is_leaf
        assert node.split_feature == candidate.feature
        assert node.split_threshold == pytest.approx(candidate.threshold)

    def test_children_are_warm_started_near_parent(self):
        node, candidate, _ = self._trained_node_with_candidate()
        node.apply_split(candidate)
        parent_weights = node.model.weights
        # Children start from the parent's weights after one gradient step of
        # equation (6); they should be close, not random.
        for child in (node.left, node.right):
            assert np.linalg.norm(child.model.weights - parent_weights) < 1.0

    def test_collapse_to_leaf_removes_children(self):
        node, candidate, _ = self._trained_node_with_candidate()
        node.apply_split(candidate)
        node.collapse_to_leaf()
        assert node.is_leaf
        assert node.split_key is None

    def test_route_mask_partitions_batch(self):
        node, candidate, _ = self._trained_node_with_candidate()
        node.apply_split(candidate)
        X, _ = make_linear_binary(30, n_features=3, seed=2)
        mask = node.route_mask(X)
        assert mask.dtype == bool
        np.testing.assert_array_equal(
            mask, X[:, node.split_feature] <= node.split_threshold
        )

    def test_route_mask_on_leaf_raises(self):
        node = _make_node()
        with pytest.raises(RuntimeError):
            node.route_mask(np.zeros((2, 3)))

    def test_subtree_accessors(self):
        node, candidate, _ = self._trained_node_with_candidate()
        node.apply_split(candidate)
        assert len(node.subtree_nodes()) == 3
        assert len(node.subtree_leaves()) == 2
        assert node.depth() == 1
        assert node.subtree_leaf_loss() == pytest.approx(
            node.left.loss + node.right.loss
        )
        assert node.subtree_leaf_parameters() == (
            node.left.model.n_parameters + node.right.model.n_parameters
        )

    def test_sorted_leaf_routes_to_correct_child(self):
        node, candidate, _ = self._trained_node_with_candidate()
        node.apply_split(candidate)
        x_left = np.zeros(3)
        x_left[node.split_feature] = node.split_threshold - 0.01
        x_right = np.zeros(3)
        x_right[node.split_feature] = node.split_threshold + 0.01
        assert node.sorted_leaf(x_left) is node.left
        assert node.sorted_leaf(x_right) is node.right

    def test_make_child_requires_valid_side(self):
        node, candidate, _ = self._trained_node_with_candidate()
        with pytest.raises(ValueError):
            node.make_child(candidate, "middle")


class TestThresholds:
    def test_leaf_split_threshold_matches_formula(self):
        node = _make_node()
        k = node.model.n_parameters
        assert node.leaf_split_threshold(1e-8) == pytest.approx(
            k - np.log(1e-8)
        )

    def test_prune_and_resplit_thresholds_after_split(self):
        node, candidate, _ = TestStructure()._trained_node_with_candidate()
        node.apply_split(candidate)
        k = node.model.n_parameters
        assert node.resplit_threshold(1e-8) == pytest.approx(
            2 * k - 2 * k - np.log(1e-8)
        )
        assert node.prune_threshold(1e-8) == pytest.approx(
            k - 2 * k - np.log(1e-8)
        )

    def test_prune_to_leaf_gain_uses_subtree_losses(self):
        node, candidate, _ = TestStructure()._trained_node_with_candidate()
        node.apply_split(candidate)
        node.left.loss = 3.0
        node.right.loss = 4.0
        node.loss = 5.0
        assert node.prune_to_leaf_gain() == pytest.approx(7.0 - 5.0)
