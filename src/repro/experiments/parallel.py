"""Parallel, sharded, resumable execution of experiment grids.

:func:`run_grid` shards (model, dataset) cells across a
``ProcessPoolExecutor``: every cell is an independent prequential run that
re-seeds its own stream and model, so the parallel schedule is provably
equivalent to the serial one -- same seeds produce identical
:class:`~repro.evaluation.prequential.PrequentialResult` traces and
summaries (only wall-clock ``time_trace`` values are host-dependent; see
:meth:`PrequentialResult.deterministic_summary`).

Hooked to a :class:`~repro.experiments.store.ResultStore`, finished cells
are written to disk as they complete and already-stored cells are skipped,
so an interrupted grid resumes instead of recomputing.  Progress streams
through a callback receiving one :class:`GridProgress` event per state
change (``cached`` / ``submitted`` / ``completed``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.evaluation.prequential import PrequentialResult
from repro.experiments.store import ResultStore, RunConfig
from repro.telemetry import GRID_CELL_COMPLETED, TELEMETRY

#: Progress event states, in lifecycle order.
CACHED = "cached"
SUBMITTED = "submitted"
COMPLETED = "completed"


@dataclass(frozen=True)
class GridProgress:
    """One progress event of a grid run."""

    config: RunConfig
    status: str  # CACHED, SUBMITTED or COMPLETED
    completed: int  # cells finished so far (cached cells included)
    total: int  # cells in the grid
    #: Wall-clock duration of the cell's prequential run, measured inside
    #: the worker that executed it.  ``None`` for cached/submitted events.
    elapsed_seconds: float | None = None


ProgressCallback = Callable[[GridProgress], None]


def _execute_cell(config: RunConfig) -> PrequentialResult:
    """Worker entry point: run one fully specified experiment cell."""
    from repro.experiments.runner import run_experiment

    return run_experiment(
        config.model,
        config.dataset,
        scale=config.scale,
        seed=config.seed,
        batch_fraction=config.batch_fraction,
        max_iterations=config.max_iterations,
    )


def _execute_cell_timed(config: RunConfig) -> tuple[PrequentialResult, float]:
    """Run one cell and measure its wall-clock duration in the worker."""
    started = time.perf_counter()
    result = _execute_cell(config)
    return result, time.perf_counter() - started


def default_jobs() -> int:
    """Default worker count: one per CPU, at least one."""
    return max(os.cpu_count() or 1, 1)


def run_grid(
    configs: Iterable[RunConfig],
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: ProgressCallback | None = None,
) -> dict[RunConfig, PrequentialResult]:
    """Run every configuration, sharding cells across worker processes.

    Parameters
    ----------
    configs:
        Grid cells to execute; duplicates are executed once.
    jobs:
        Worker processes.  ``1`` runs serially in-process (no executor);
        values above the cell count are clamped.
    store:
        Optional result store.  Stored cells are loaded instead of run, and
        every freshly computed cell is persisted the moment it completes, so
        a killed grid resumes from disk.
    progress:
        Optional callback receiving a :class:`GridProgress` per event.

    Returns
    -------
    dict mapping each configuration to its result, in input order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}.")
    ordered = list(dict.fromkeys(configs))
    total = len(ordered)
    results: dict[RunConfig, PrequentialResult] = {}

    def emit(
        config: RunConfig, status: str, elapsed_seconds: float | None = None
    ) -> None:
        if status == COMPLETED and TELEMETRY.enabled:
            TELEMETRY.emit(
                GRID_CELL_COMPLETED,
                model=config.model,
                dataset=config.dataset,
                elapsed_seconds=elapsed_seconds,
            )
            TELEMETRY.counter("repro.experiments.cells_total").inc()
            if elapsed_seconds is not None:
                TELEMETRY.histogram("repro.experiments.cell_seconds").observe(
                    elapsed_seconds
                )
        if progress is not None:
            progress(
                GridProgress(
                    config, status, len(results), total, elapsed_seconds
                )
            )

    pending: list[RunConfig] = []
    for config in ordered:
        cached = store.get(config) if store is not None else None
        if cached is not None:
            results[config] = cached
            emit(config, CACHED)
        else:
            pending.append(config)

    if not pending:
        return {config: results[config] for config in ordered}

    if jobs == 1:
        for config in pending:
            emit(config, SUBMITTED)
            result, elapsed = _execute_cell_timed(config)
            if store is not None:
                store.put(config, result)
            results[config] = result
            emit(config, COMPLETED, elapsed)
        return {config: results[config] for config in ordered}

    workers = min(jobs, len(pending))
    first_error: BaseException | None = None
    with ProcessPoolExecutor(max_workers=workers) as executor:
        futures = {}
        for config in pending:
            futures[executor.submit(_execute_cell_timed, config)] = config
            emit(config, SUBMITTED)
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for future in done:
                config = futures[future]
                try:
                    result, elapsed = future.result()
                except BaseException as error:
                    if first_error is None:
                        first_error = error
                        # Fail fast: drop cells that never started (they have
                        # nothing to persist).  Cells already running finish
                        # and are still drained below, so with a store the
                        # resume-instead-of-recompute contract holds.
                        for pending_future in not_done:
                            pending_future.cancel()
                    continue
                if store is not None:
                    store.put(config, result)
                results[config] = result
                emit(config, COMPLETED, elapsed)
    if first_error is not None:
        raise first_error
    return {config: results[config] for config in ordered}


def grid_configs(
    model_names: Sequence[str],
    dataset_names: Sequence[str],
    **config_kwargs,
) -> list[RunConfig]:
    """The full (dataset-major) grid of configurations for a suite.

    ``config_kwargs`` (``scale``, ``seed``, ``batch_fraction``,
    ``max_iterations``) forward to :class:`RunConfig`, which owns the
    defaults.
    """
    return [
        RunConfig(model=model_name, dataset=dataset_name, **config_kwargs)
        for dataset_name in dataset_names
        for model_name in model_names
    ]
