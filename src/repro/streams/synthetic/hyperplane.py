"""Rotating hyperplane generator (Hulten, Spencer & Domingos, 2001).

Observations are uniform in the unit hypercube; the label indicates on which
side of a hyperplane the observation falls.  A subset of the hyperplane
weights drifts by a small magnitude after every sample, producing continuous
incremental concept drift over the whole stream -- the setting the paper uses
with 50 features and 10% label noise.

The weight trajectory is a sequential random walk, so this generator uses
the stateful block machinery of :class:`~repro.streams.base.SeededStream`:
direction reversals are drawn per block and the weight evolution inside a
block is computed with cumulative products/sums (no per-row Python loop),
with block-boundary states cached for chunk-invariant consumption.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import SeededStream
from repro.utils.validation import check_in_range


class HyperplaneGenerator(SeededStream):
    """Rotating-hyperplane stream with incremental drift.

    Parameters
    ----------
    n_samples:
        Stream length.
    n_features:
        Dimensionality of the hypercube (50 in the paper).
    n_drift_features:
        Number of weights subject to drift; ``None`` drifts at most 10
        features (all of them for lower-dimensional streams).
    magnitude:
        Magnitude of the per-sample weight change.
    noise:
        Probability of flipping each label (10% in the paper).
    sigma:
        Probability of reversing the drift direction of each drifting weight
        after a sample.
    seed:
        Random seed.
    """

    stateful = True

    def __init__(
        self,
        n_samples: int = 500_000,
        n_features: int = 50,
        n_drift_features: int | None = None,
        magnitude: float = 0.001,
        noise: float = 0.1,
        sigma: float = 0.1,
        seed: int | None = None,
    ) -> None:
        super().__init__(
            n_samples=n_samples, n_features=n_features, n_classes=2, seed=seed
        )
        if n_drift_features is None:
            n_drift_features = min(10, n_features)
        if not 0 <= n_drift_features <= n_features:
            raise ValueError(
                "n_drift_features must be in [0, n_features], "
                f"got {n_drift_features!r}."
            )
        check_in_range(noise, "noise", 0.0, 1.0)
        check_in_range(sigma, "sigma", 0.0, 1.0)
        self.n_drift_features = int(n_drift_features)
        self.magnitude = float(magnitude)
        self.noise = float(noise)
        self.sigma = float(sigma)

    # ------------------------------------------------------------- concepts
    @property
    def _drifting(self) -> bool:
        return self.n_drift_features > 0 and self.magnitude != 0.0

    def _initial_state(self) -> tuple[np.ndarray, np.ndarray]:
        weights = self.setup_rng().uniform(0.0, 1.0, size=self.n_features)
        return weights, np.ones(self.n_features)

    def _weight_trajectory(
        self, reverse: np.ndarray, state: tuple[np.ndarray, np.ndarray]
    ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        """Per-row weight matrix for one block plus the end-of-block state.

        Row ``t`` holds the weights used to label sample ``t``; the drift
        step (weight nudge + possible direction reversal) applies *after*
        each sample, matching the published per-sample dynamics.
        """
        weights0, directions0 = state
        count, n_drift = reverse.shape
        W = np.broadcast_to(weights0, (count, self.n_features)).copy()
        signs = np.where(reverse, -1.0, 1.0)
        cumulative = np.cumprod(signs, axis=0)
        d0 = directions0[:n_drift]
        per_row_directions = np.vstack([d0, d0 * cumulative[:-1]])
        travelled = np.vstack(
            [np.zeros(n_drift), np.cumsum(per_row_directions, axis=0)[:-1]]
        )
        W[:, :n_drift] = weights0[:n_drift] + self.magnitude * travelled
        end_weights = weights0.copy()
        end_weights[:n_drift] += self.magnitude * per_row_directions.sum(axis=0)
        end_directions = directions0.copy()
        end_directions[:n_drift] = d0 * cumulative[-1]
        return W, (end_weights, end_directions)

    def weights_at(self, index: int) -> np.ndarray:
        """Hyperplane weights in effect at stream position ``index``."""
        if not 0 <= index <= self.n_samples:
            raise ValueError(f"index must be in [0, {self.n_samples}], got {index!r}.")
        block, offset = divmod(index, self.block_size)
        state = self._state_for_block(block)
        weights0, _ = state
        if offset == 0 or not self._drifting:
            return weights0.copy()
        rng = self.block_rng(block)
        count = self._block_row_count(block)
        rng.uniform(0.0, 1.0, size=(count, self.n_features))  # skip the X draws
        reverse = rng.random((count, self.n_drift_features)) < self.sigma
        W, (end_weights, _) = self._weight_trajectory(reverse, state)
        if offset >= count:  # index == n_samples inside a partial final block
            return end_weights.copy()
        return W[offset].copy()

    @property
    def weights(self) -> np.ndarray:
        """Hyperplane weights at the current stream position."""
        return self.weights_at(self._position)

    # ------------------------------------------------------------- sampling
    def _generate_block(
        self, rng: np.random.Generator, start: int, count: int, state: object
    ) -> tuple[np.ndarray, np.ndarray, object]:
        X = rng.uniform(0.0, 1.0, size=(count, self.n_features))
        if self._drifting:
            reverse = rng.random((count, self.n_drift_features)) < self.sigma
            W, next_state = self._weight_trajectory(reverse, state)
            thresholds = 0.5 * W.sum(axis=1)
            y = (np.einsum("ij,ij->i", X, W) >= thresholds).astype(int)
        else:
            weights0, _ = state
            threshold = 0.5 * weights0.sum()
            y = (X @ weights0 >= threshold).astype(int)
            next_state = state
        if self.noise > 0:
            flip = rng.random(count) < self.noise
            y = np.where(flip, 1 - y, y)
        return X, y, next_state
