"""Tests for the parallel grid engine, the result store and the CLI."""

import json
import os

import numpy as np
import pytest

from repro.evaluation.prequential import PrequentialResult
from repro.experiments.__main__ import main as cli_main
from repro.experiments.parallel import (
    CACHED,
    COMPLETED,
    SUBMITTED,
    default_jobs,
    grid_configs,
    run_grid,
)
from repro.experiments.runner import ExperimentSuite, run_experiment
from repro.experiments.store import ResultStore, RunConfig
from repro.experiments.tables import table2_f1

#: A small but non-trivial grid shared by the equivalence/resume tests.
SMALL_GRID = dict(scale=0.002, seed=7, batch_fraction=0.02)


def _small_configs(models=("dmt", "vfdt_mc"), datasets=("sea", "electricity")):
    return grid_configs(models, datasets, **SMALL_GRID)


class TestRunConfig:
    def test_digest_is_stable_and_config_sensitive(self):
        config = RunConfig(model="dmt", dataset="sea")
        assert config.digest() == RunConfig(model="dmt", dataset="sea").digest()
        assert config.digest() != RunConfig(model="dmt", dataset="sea", seed=1).digest()

    def test_key_round_trip(self):
        config = RunConfig(
            model="dmt", dataset="sea", scale=0.5, seed=None,
            batch_fraction=0.01, max_iterations=3,
        )
        assert RunConfig.from_key(config.key()) == config


class TestResultStore:
    def _result(self):
        return run_experiment("vfdt_mc", "sea", **SMALL_GRID)

    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = RunConfig(model="vfdt_mc", dataset="sea", **SMALL_GRID)
        result = self._result()
        assert store.get(config) is None
        assert not store.contains(config)
        store.put(config, result)
        assert store.contains(config)
        loaded = store.get(config)
        assert loaded.summary() == result.summary()
        assert loaded.f1_trace == result.f1_trace
        np.testing.assert_array_equal(
            loaded.overall_confusion.matrix, result.overall_confusion.matrix
        )
        assert store.configs() == [config]
        assert len(store) == 1

    def test_load_all_rebuilds_every_cell(self, tmp_path):
        store = ResultStore(tmp_path)
        configs = _small_configs(models=("vfdt_mc",))
        run_grid(configs, jobs=1, store=store)
        loaded = store.load_all()
        assert set(loaded) == set(configs)
        assert all(isinstance(r, PrequentialResult) for r in loaded.values())

    def test_foreign_json_files_are_ignored_by_scans(self, tmp_path):
        store = ResultStore(tmp_path)
        config = RunConfig(model="vfdt_mc", dataset="sea", **SMALL_GRID)
        store.put(config, self._result())
        with open(os.path.join(store.directory, "BENCH_other.json"), "w") as handle:
            json.dump({"benchmark": "unrelated"}, handle)
        assert len(store) == 1
        assert store.configs() == [config]
        assert set(store.load_all()) == {config}

    def test_corrupt_document_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        config = RunConfig(model="vfdt_mc", dataset="sea", **SMALL_GRID)
        with open(store.path_for(config), "w") as handle:
            json.dump({"format": "other"}, handle)
        with pytest.raises(ValueError, match="document"):
            store.get(config)

    def test_config_mismatch_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        config = RunConfig(model="vfdt_mc", dataset="sea", **SMALL_GRID)
        store.put(config, self._result())
        other = RunConfig(model="vfdt_mc", dataset="sea", seed=999)
        os.replace(store.path_for(config), store.path_for(other))
        with pytest.raises(ValueError, match="config"):
            store.get(other)


class TestRunGrid:
    def test_invalid_jobs_raise(self):
        with pytest.raises(ValueError):
            run_grid([], jobs=0)

    def test_default_jobs_is_positive(self):
        assert default_jobs() >= 1

    def test_parallel_matches_serial_bit_for_bit(self):
        """Same seeds => identical deterministic summaries and traces."""
        configs = _small_configs()
        serial = run_grid(configs, jobs=1)
        parallel = run_grid(configs, jobs=2)
        assert list(serial) == list(parallel) == configs
        for config in configs:
            assert (
                serial[config].deterministic_summary()
                == parallel[config].deterministic_summary()
            )
            assert serial[config].f1_trace == parallel[config].f1_trace
            assert serial[config].n_splits_trace == parallel[config].n_splits_trace
            np.testing.assert_array_equal(
                serial[config].overall_confusion.matrix,
                parallel[config].overall_confusion.matrix,
            )

    def test_resume_skips_finished_cells(self, tmp_path):
        """An interrupted grid (partial store) only executes the missing cells."""
        configs = _small_configs()
        store = ResultStore(tmp_path)
        # Simulate a run killed after two of four cells finished.
        run_grid(configs[:2], jobs=1, store=store)
        assert len(store) == 2

        events = []
        results = run_grid(
            configs, jobs=2, store=store, progress=lambda e: events.append(e)
        )
        by_status = {}
        for event in events:
            by_status.setdefault(event.status, []).append(event.config)
        assert set(by_status[CACHED]) == set(configs[:2])
        assert set(by_status[SUBMITTED]) == set(configs[2:])
        assert set(by_status[COMPLETED]) == set(configs[2:])
        assert len(store) == 4
        assert set(results) == set(configs)

    def test_fully_cached_grid_runs_nothing(self, tmp_path):
        configs = _small_configs(models=("vfdt_mc",))
        store = ResultStore(tmp_path)
        run_grid(configs, jobs=1, store=store)
        events = []
        run_grid(configs, jobs=2, store=store, progress=lambda e: events.append(e))
        assert [event.status for event in events] == [CACHED] * len(configs)

    def test_progress_counts_reach_total(self):
        configs = _small_configs(models=("vfdt_mc",))
        events = []
        run_grid(configs, jobs=1, progress=lambda e: events.append(e))
        assert events[-1].status == COMPLETED
        assert events[-1].completed == events[-1].total == len(configs)

    def test_worker_errors_propagate(self):
        bad = [RunConfig(model="nope", dataset="sea", **SMALL_GRID)]
        with pytest.raises(KeyError):
            run_grid(bad, jobs=2)

    def test_failing_cell_does_not_discard_finished_siblings(self, tmp_path):
        """Siblings that finish while one cell fails must still be stored."""
        store = ResultStore(tmp_path)
        good = _small_configs(models=("vfdt_mc",))
        bad = RunConfig(model="nope", dataset="sea", **SMALL_GRID)
        with pytest.raises(KeyError):
            run_grid(good + [bad], jobs=2, store=store)
        assert len(store) == len(good)
        for config in good:
            assert store.contains(config)


class TestSuiteIntegration:
    def test_suite_run_parallel_with_store(self, tmp_path):
        suite = ExperimentSuite(
            model_names=("dmt", "vfdt_mc"),
            dataset_names=("sea", "electricity"),
            jobs=2,
            store=str(tmp_path / "store"),
            **SMALL_GRID,
        )
        suite.run()
        assert len(suite.results) == 4
        assert len(suite.store) == 4

    def test_tables_regenerate_from_cold_store(self, tmp_path):
        """Table builders work from cached runs without recomputing."""
        kwargs = dict(
            model_names=("dmt", "vfdt_mc"),
            dataset_names=("sea",),
            store=str(tmp_path),
            **SMALL_GRID,
        )
        warm = ExperimentSuite(**kwargs).run()
        records_warm, _ = table2_f1(warm)

        cold = ExperimentSuite(**kwargs)  # fresh suite, results only on disk
        events = []
        cold.run(progress=lambda e: events.append(e))
        assert [event.status for event in events] == [CACHED, CACHED]
        records_cold, text = table2_f1(cold)
        assert records_cold == records_warm
        assert "Table II" in text

    def test_suite_get_loads_from_store(self, tmp_path):
        kwargs = dict(
            model_names=("vfdt_mc",), dataset_names=("sea",),
            store=str(tmp_path), **SMALL_GRID,
        )
        first = ExperimentSuite(**kwargs).run()
        second = ExperimentSuite(**kwargs)
        result = second.get("vfdt_mc", "sea")
        assert result.summary() == first.get("vfdt_mc", "sea").summary()


class TestCommandLine:
    CLI_ARGS = [
        "--models", "vfdt_mc",
        "--datasets", "sea", "electricity",
        "--scale", "0.002",
        "--batch-fraction", "0.02",
        "--seed", "7",
    ]

    def test_cli_runs_grid_and_populates_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        exit_code = cli_main(
            self.CLI_ARGS + ["--jobs", "2", "--store", store_dir, "--tables"]
        )
        assert exit_code == 0
        assert len(ResultStore(store_dir)) == 2
        output = capsys.readouterr().out
        assert "completed" in output
        assert "Table II" in output

    def test_cli_resumes_from_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        cli_main(self.CLI_ARGS + ["--store", store_dir, "--quiet"])
        cli_main(self.CLI_ARGS + ["--store", store_dir])
        output = capsys.readouterr().out
        assert "cached" in output
        assert "submitted" not in output
