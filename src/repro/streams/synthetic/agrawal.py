"""Agrawal generator (Agrawal, Imielinski & Swami, 1993).

Generates loan-application records with nine attributes (salary, commission,
age, education level, car make, zip code, house value, years owned, loan
amount) and labels them with one of ten published classification functions.
Incremental concept drift is produced by gradually blending the active
function into the next one over configurable stream windows -- the paper uses
drift windows at 10-20%, 30-50% and 80-90% of a 1,000,000-sample stream and
10% perturbation noise.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import SeededStream
from repro.utils.validation import check_in_range


def _between(values: np.ndarray, low: float, high: float) -> np.ndarray:
    return (low <= values) & (values <= high)


def _classify_vec(function_id: int, records: np.ndarray) -> np.ndarray:
    """Vectorised Agrawal function: records ``(n, 9)`` -> labels ``(n,)``.

    Columns are (salary, commission, age, elevel, car, zipcode, hvalue,
    hyears, loan) in this order.
    """
    salary = records[:, 0]
    commission = records[:, 1]
    age = records[:, 2]
    elevel = records[:, 3]
    hvalue = records[:, 6]
    hyears = records[:, 7]
    loan = records[:, 8]
    young, middle = age < 40, age < 60
    if function_id == 0:
        approved = young | (age >= 60)
    elif function_id == 1:
        approved = np.select(
            [young, middle],
            [_between(salary, 50_000, 100_000), _between(salary, 75_000, 125_000)],
            default=_between(salary, 25_000, 75_000),
        )
    elif function_id == 2:
        approved = np.select(
            [young, middle],
            [np.isin(elevel, (0, 1)), np.isin(elevel, (1, 2, 3))],
            default=np.isin(elevel, (2, 3, 4)),
        )
    elif function_id == 3:
        approved = np.select(
            [young, middle],
            [
                np.where(
                    np.isin(elevel, (0, 1)),
                    _between(salary, 25_000, 75_000),
                    _between(salary, 50_000, 100_000),
                ),
                np.where(
                    np.isin(elevel, (1, 2, 3)),
                    _between(salary, 50_000, 100_000),
                    _between(salary, 75_000, 125_000),
                ),
            ],
            default=np.where(
                np.isin(elevel, (2, 3, 4)),
                _between(salary, 50_000, 100_000),
                _between(salary, 25_000, 75_000),
            ),
        )
    elif function_id == 4:
        approved = np.select(
            [young, middle],
            [
                np.where(
                    _between(salary, 50_000, 100_000),
                    _between(loan, 100_000, 300_000),
                    _between(loan, 200_000, 400_000),
                ),
                np.where(
                    _between(salary, 75_000, 125_000),
                    _between(loan, 200_000, 400_000),
                    _between(loan, 300_000, 500_000),
                ),
            ],
            default=np.where(
                _between(salary, 25_000, 75_000),
                _between(loan, 300_000, 500_000),
                _between(loan, 100_000, 300_000),
            ),
        )
    elif function_id == 5:
        total = salary + commission
        approved = np.select(
            [young, middle],
            [_between(total, 50_000, 100_000), _between(total, 75_000, 125_000)],
            default=_between(total, 25_000, 75_000),
        )
    elif function_id == 6:
        approved = 0.67 * (salary + commission) - 0.2 * loan - 20_000 > 0
    elif function_id == 7:
        approved = 0.67 * (salary + commission) - 5_000 * elevel - 20_000 > 0
    elif function_id == 8:
        approved = (
            0.67 * (salary + commission) - 5_000 * elevel - 0.2 * loan - 10_000 > 0
        )
    elif function_id == 9:
        equity = np.where(hyears >= 20, 0.1 * hvalue * (hyears - 20), 0.0)
        approved = (
            0.67 * (salary + commission) - 5_000 * elevel + 0.2 * equity - 10_000 > 0
        )
    else:
        raise ValueError(f"Unknown Agrawal function id {function_id!r}.")
    return np.where(approved, 0, 1)


def _classify(function_id: int, record: np.ndarray) -> int:
    """Apply one of the ten Agrawal functions to a single record."""
    return int(_classify_vec(function_id, np.asarray(record, dtype=float)[None, :])[0])


class AgrawalGenerator(SeededStream):
    """Agrawal loan-application stream with incremental drift.

    Parameters
    ----------
    n_samples:
        Stream length.
    perturbation:
        Fraction of a numeric attribute's range added as uniform noise
        (the paper uses 0.1).
    classification_function:
        Index (0-9) of the initial labelling function.
    drift_windows:
        ``(start_fraction, end_fraction)`` tuples; inside each window the
        labelling function blends linearly into the next one.  The defaults
        match the paper's schedule.
    seed:
        Random seed.
    """

    _NUMERIC_RANGES = {
        0: (20_000.0, 150_000.0),  # salary
        1: (0.0, 75_000.0),        # commission
        2: (20.0, 80.0),           # age
        6: (0.0, 900_000.0),       # house value (zipcode-dependent)
        7: (1.0, 30.0),            # years house owned
        8: (0.0, 500_000.0),       # loan amount
    }

    def __init__(
        self,
        n_samples: int = 1_000_000,
        perturbation: float = 0.1,
        classification_function: int = 0,
        drift_windows: tuple[tuple[float, float], ...] = (
            (0.1, 0.2),
            (0.3, 0.5),
            (0.8, 0.9),
        ),
        seed: int | None = None,
    ) -> None:
        super().__init__(n_samples=n_samples, n_features=9, n_classes=2, seed=seed)
        check_in_range(perturbation, "perturbation", 0.0, 1.0)
        if not 0 <= classification_function <= 9:
            raise ValueError(
                "classification_function must be in 0..9, "
                f"got {classification_function!r}."
            )
        self.perturbation = float(perturbation)
        self.classification_function = int(classification_function)
        self.drift_windows = tuple(
            (float(start), float(end)) for start, end in drift_windows
        )
        for start, end in self.drift_windows:
            if not 0.0 <= start < end <= 1.0:
                raise ValueError(
                    f"Invalid drift window ({start!r}, {end!r})."
                )

    # ----------------------------------------------------------- concepts
    def _blend_at(self, fractions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised (current function, blend probability) per fraction."""
        offsets = np.zeros(len(fractions), dtype=int)
        blend = np.zeros(len(fractions))
        for start, end in self.drift_windows:
            offsets += fractions >= end
            inside = (fractions >= start) & (fractions < end)
            blend[inside] = (fractions[inside] - start) / (end - start)
        current = (self.classification_function + offsets) % 10
        return current, blend

    def active_functions(self, index: int) -> tuple[int, int, float]:
        """Return (current function, next function, blend probability)."""
        current, blend = self._blend_at(np.array([index / self.n_samples]))
        if blend[0] > 0:
            return int(current[0]), int((current[0] + 1) % 10), float(blend[0])
        return int(current[0]), int(current[0]), 0.0

    # ----------------------------------------------------------- sampling
    def _sample_records(self, rng: np.random.Generator, count: int) -> np.ndarray:
        salary = rng.uniform(20_000.0, 150_000.0, size=count)
        commission = rng.uniform(10_000.0, 75_000.0, size=count)
        commission = np.where(salary >= 75_000.0, 0.0, commission)
        age = rng.uniform(20.0, 80.0, size=count)
        elevel = rng.integers(0, 5, size=count).astype(float)
        car = rng.integers(1, 21, size=count).astype(float)
        zipcode = rng.integers(0, 9, size=count).astype(float)
        hvalue = (9.0 - zipcode) * 100_000.0 * rng.uniform(0.5, 1.5, size=count)
        hyears = rng.uniform(1.0, 30.0, size=count)
        loan = rng.uniform(0.0, 500_000.0, size=count)
        return np.column_stack(
            [salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan]
        )

    def _perturb(self, rng: np.random.Generator, records: np.ndarray) -> np.ndarray:
        if self.perturbation <= 0:
            return records
        perturbed = records.copy()
        columns = list(self._NUMERIC_RANGES)
        bounds = np.array([self._NUMERIC_RANGES[col] for col in columns])
        spans = bounds[:, 1] - bounds[:, 0]
        noise = rng.uniform(-1.0, 1.0, size=(len(records), len(columns)))
        values = perturbed[:, columns] + noise * self.perturbation * spans
        perturbed[:, columns] = np.clip(values, bounds[:, 0], bounds[:, 1])
        return perturbed

    def _generate_block(
        self, rng: np.random.Generator, start: int, count: int, state: object
    ) -> tuple[np.ndarray, np.ndarray, object]:
        records = self._sample_records(rng, count)
        fractions = np.arange(start, start + count) / self.n_samples
        current, blend = self._blend_at(fractions)
        switched = (blend > 0) & (rng.random(count) < blend)
        function_ids = np.where(switched, (current + 1) % 10, current)
        y = np.empty(count, dtype=int)
        for function_id in np.unique(function_ids):
            mask = function_ids == function_id
            y[mask] = _classify_vec(int(function_id), records[mask])
        return self._perturb(rng, records), y, None
