"""Tests for the real-world surrogate streams."""

import numpy as np
import pytest

from repro.streams.realworld import (
    REAL_WORLD_SPECS,
    SurrogateStream,
    make_surrogate,
)


class TestSpecs:
    def test_all_ten_datasets_are_registered(self):
        expected = {
            "electricity", "airlines", "bank", "tueyeq", "poker",
            "kdd", "covertype", "gas", "insects_abrupt", "insects_incremental",
        }
        assert set(REAL_WORLD_SPECS) == expected

    def test_spec_shapes_match_table1(self):
        spec = REAL_WORLD_SPECS["electricity"]
        assert spec.n_samples == 45_312
        assert spec.n_features == 8
        assert spec.n_classes == 2
        gas = REAL_WORLD_SPECS["gas"]
        assert gas.n_features == 128 and gas.n_classes == 6
        kdd = REAL_WORLD_SPECS["kdd"]
        assert kdd.n_classes == 23

    def test_majority_fractions_match_table1(self):
        assert REAL_WORLD_SPECS["bank"].majority_fraction == pytest.approx(
            39_922 / 45_211
        )
        assert REAL_WORLD_SPECS["poker"].majority_fraction == pytest.approx(
            513_701 / 1_025_000
        )


class TestSurrogateStream:
    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            SurrogateStream(100, 3, 2, drift="sideways")
        with pytest.raises(ValueError):
            SurrogateStream(100, 3, 2, class_weights=np.array([0.5, 0.4]))
        with pytest.raises(ValueError):
            SurrogateStream(100, 3, 2, class_weights=np.array([0.5, 0.5, 0.0]))
        with pytest.raises(ValueError):
            SurrogateStream(100, 3, 2, noise_std=0.0)

    def test_output_shapes_and_range(self):
        stream = SurrogateStream(500, n_features=6, n_classes=3, seed=0)
        X, y = stream.next_sample(500)
        assert X.shape == (500, 6)
        assert X.min() >= 0.0 and X.max() <= 1.0
        assert set(np.unique(y)) <= {0, 1, 2}

    def test_class_weights_are_respected(self):
        weights = np.array([0.8, 0.2])
        stream = SurrogateStream(
            4000, n_features=4, n_classes=2, class_weights=weights, seed=1
        )
        _, y = stream.next_sample(4000)
        assert np.mean(y == 0) == pytest.approx(0.8, abs=0.03)

    def test_abrupt_drift_changes_prototypes(self):
        stream = SurrogateStream(
            1000, n_features=5, n_classes=2, drift="abrupt", n_drift_events=1, seed=2
        )
        early = stream.prototype_at(0)
        late = stream.prototype_at(999)
        assert not np.allclose(early, late)

    def test_incremental_drift_is_gradual(self):
        stream = SurrogateStream(
            1000, n_features=5, n_classes=2, drift="incremental",
            n_drift_events=1, seed=3,
        )
        start = stream.prototype_at(0)
        middle = stream.prototype_at(500)
        end = stream.prototype_at(999)
        drift_total = np.abs(end - start).sum()
        drift_half = np.abs(middle - start).sum()
        assert 0 < drift_half < drift_total

    def test_cyclic_drift_returns_to_start(self):
        stream = SurrogateStream(
            1000, n_features=5, n_classes=2, drift="cyclic", n_drift_events=2, seed=4
        )
        start = stream.prototype_at(0)
        full_cycle = stream.prototype_at(500)
        np.testing.assert_allclose(start, full_cycle, atol=1e-6)

    def test_no_drift_keeps_prototypes_fixed(self):
        stream = SurrogateStream(1000, n_features=5, n_classes=2, drift="none", seed=5)
        np.testing.assert_allclose(stream.prototype_at(0), stream.prototype_at(999))

    def test_restart_reproduces(self):
        stream = SurrogateStream(300, n_features=4, n_classes=3, seed=6)
        X1, y1 = stream.next_sample(300)
        stream.restart()
        X2, y2 = stream.next_sample(300)
        np.testing.assert_allclose(X1, X2)
        np.testing.assert_array_equal(y1, y2)

    def test_surrogate_is_learnable(self):
        """The surrogate must carry enough signal that a trivial nearest-
        prototype rule beats the majority baseline -- otherwise the
        comparative evaluation would be meaningless."""
        stream = SurrogateStream(
            3000, n_features=10, n_classes=3, noise_std=0.15, seed=7
        )
        X, y = stream.next_sample(3000)
        prototypes = stream.prototype_at(0)
        distances = np.linalg.norm(X[:, None, :] - prototypes[None, :, :], axis=2)
        predictions = np.argmin(distances, axis=1)
        accuracy = np.mean(predictions == y)
        majority = max(np.bincount(y) / len(y))
        assert accuracy > majority + 0.1


class TestMakeSurrogate:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_surrogate("does-not-exist")

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            make_surrogate("electricity", scale=0.0)

    def test_scale_reduces_length(self):
        stream = make_surrogate("electricity", scale=0.01, seed=0)
        assert stream.n_samples == max(int(round(45_312 * 0.01)), 500)
        assert stream.n_features == 8

    def test_minimum_length_is_enforced(self):
        stream = make_surrogate("gas", scale=0.001, seed=0)
        assert stream.n_samples >= 500

    @pytest.mark.parametrize("name", sorted(REAL_WORLD_SPECS))
    def test_every_surrogate_generates(self, name):
        stream = make_surrogate(name, scale=0.01, seed=1)
        X, y = stream.next_sample(200)
        spec = REAL_WORLD_SPECS[name]
        assert X.shape == (200, spec.n_features)
        assert y.max() < spec.n_classes
