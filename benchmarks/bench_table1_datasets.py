"""Table I -- data-set inventory.

Regenerates the data-set summary of Table I (name, number of samples,
features, classes, drift type) from the experiment registry and verifies the
schema against the paper's values.
"""

from repro.experiments.registry import DATASET_REGISTRY
from repro.experiments.tables import table1_datasets


def test_table1_datasets(benchmark):
    records, text = benchmark(table1_datasets)
    print("\n" + text)

    assert len(records) == 13
    by_name = {record["dataset"]: record for record in records}
    # Spot-check the schema against Table I of the paper.
    assert by_name["Electricity"]["n_samples"] == 45_312
    assert by_name["Electricity"]["n_features"] == 8
    assert by_name["Gas"]["n_features"] == 128
    assert by_name["Gas"]["n_classes"] == 6
    assert by_name["KDDCup"]["n_classes"] == 23
    assert by_name["Poker-Hand"]["n_classes"] == 9
    assert by_name["Hyperplane (synthetic, incremental)"]["n_features"] == 50
    assert len(DATASET_REGISTRY) == 13
