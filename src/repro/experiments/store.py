"""On-disk store of prequential experiment results.

Every grid cell of an experiment suite is identified by its full run
configuration -- ``(model, dataset, scale, seed, batch_fraction,
max_iterations)`` -- and stored as one JSON document holding that
configuration next to the serialized
:class:`~repro.evaluation.prequential.PrequentialResult` (including its
:class:`~repro.evaluation.metrics.ConfusionMatrix`, via the persistence
codec).  An interrupted suite therefore resumes instead of recomputing:
cells already on disk are loaded, only the missing ones execute, and the
table/figure builders can regenerate every artefact from a cold store.

Files are written atomically (temp file + rename), so a crash mid-write
never leaves a truncated result behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import asdict, dataclass

from repro.evaluation.prequential import PrequentialResult
from repro.persistence.serialize import atomic_write_json

RESULT_FORMAT_NAME = "repro-experiment-result"
RESULT_FORMAT_VERSION = 1

#: File-name shape of a store document; directory scans only touch matches,
#: so foreign JSON files sharing the directory are ignored rather than fatal.
_STORE_FILE_PATTERN = re.compile(r".+__.+__[0-9a-f]{16}\.json$")


@dataclass(frozen=True)
class RunConfig:
    """The full configuration of one (model, dataset) experiment cell."""

    model: str
    dataset: str
    scale: float = 0.02
    seed: int | None = 42
    batch_fraction: float = 0.001
    max_iterations: int | None = None

    def key(self) -> dict:
        """JSON-safe dictionary identifying this configuration."""
        return asdict(self)

    def digest(self) -> str:
        """Stable content hash of the configuration (used for file names)."""
        canonical = json.dumps(self.key(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_key(cls, key: dict) -> "RunConfig":
        return cls(**key)


class ResultStore:
    """Directory of serialized :class:`PrequentialResult` documents.

    Parameters
    ----------
    directory:
        Store location; created (including parents) if missing.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    # ------------------------------------------------------------------ paths
    def path_for(self, config: RunConfig) -> str:
        """File path of a configuration's result document."""
        filename = f"{config.model}__{config.dataset}__{config.digest()}.json"
        return os.path.join(self.directory, filename)

    # ------------------------------------------------------------------- API
    def contains(self, config: RunConfig) -> bool:
        return os.path.exists(self.path_for(config))

    def put(self, config: RunConfig, result: PrequentialResult) -> str:
        """Atomically persist one cell's result; returns the file path."""
        document = {
            "format": RESULT_FORMAT_NAME,
            "format_version": RESULT_FORMAT_VERSION,
            "config": config.key(),
            "result": result.to_state(),
        }
        return atomic_write_json(self.path_for(config), document)

    def get(self, config: RunConfig) -> PrequentialResult | None:
        """Load one cell's result, or ``None`` if it is not stored."""
        path = self.path_for(config)
        if not os.path.exists(path):
            return None
        document = self._read_document(path)
        stored = RunConfig.from_key(document["config"])
        if stored != config:
            raise ValueError(
                f"Result file {path!r} holds config {stored}, expected {config}; "
                "the store directory is corrupt (hash collision or manual edit)."
            )
        return PrequentialResult.from_state(document["result"])

    def configs(self) -> list[RunConfig]:
        """Configurations of every stored result (sorted by file name)."""
        return [
            RunConfig.from_key(document["config"])
            for document in self._read_all_documents()
        ]

    def load_all(self) -> dict[RunConfig, PrequentialResult]:
        """Decode every stored result (used to rebuild tables from cache)."""
        return {
            RunConfig.from_key(document["config"]): PrequentialResult.from_state(
                document["result"]
            )
            for document in self._read_all_documents()
        }

    def _read_document(self, path: str) -> dict:
        with open(path) as handle:
            document = json.load(handle)
        self._check_document(document, path)
        return document

    def _read_all_documents(self) -> list[dict]:
        return [
            self._read_document(os.path.join(self.directory, filename))
            for filename in sorted(os.listdir(self.directory))
            if _STORE_FILE_PATTERN.fullmatch(filename)
        ]

    def __len__(self) -> int:
        return sum(
            1
            for name in os.listdir(self.directory)
            if _STORE_FILE_PATTERN.fullmatch(name)
        )

    @staticmethod
    def _check_document(document: dict, path: str) -> None:
        if (
            not isinstance(document, dict)
            or document.get("format") != RESULT_FORMAT_NAME
        ):
            raise ValueError(f"{path!r} is not a {RESULT_FORMAT_NAME} document.")
        version = document.get("format_version")
        if (
            not isinstance(version, int)
            or isinstance(version, bool)
            or version < 1
            or version > RESULT_FORMAT_VERSION
        ):
            raise ValueError(
                f"{path!r} uses format_version {version!r}; this build supports "
                f"up to {RESULT_FORMAT_VERSION}."
            )
        if "config" not in document or "result" not in document:
            raise ValueError(f"{path!r} is missing 'config' or 'result'.")
