"""Aggregation helpers for metric and complexity traces.

The paper reports mean ± standard deviation of per-iteration values (Tables
II-V) and sliding-window aggregations with a window of 20 iterations for the
time-series plots (Figure 3).
"""

from __future__ import annotations

import numpy as np


def summarize_trace(values) -> tuple[float, float]:
    """Mean and standard deviation of a per-iteration trace."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return 0.0, 0.0
    return float(array.mean()), float(array.std())


def sliding_window_aggregate(
    values, window: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Trailing-window mean and standard deviation of a trace.

    Matches the aggregation used for Figure 3 of the paper: at position ``i``
    the mean/std of the last ``window`` values (or all values seen so far,
    when fewer are available) is reported.
    """
    array = np.asarray(list(values), dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window!r}.")
    means = np.empty(array.size)
    stds = np.empty(array.size)
    for index in range(array.size):
        chunk = array[max(index - window + 1, 0) : index + 1]
        means[index] = chunk.mean()
        stds[index] = chunk.std()
    return means, stds
