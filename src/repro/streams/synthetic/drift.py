"""Stream composition with controlled concept drift.

:class:`ConceptDriftStream` blends a base stream into a drift stream around a
given position using the sigmoid transition of MOA / scikit-multiflow: before
the transition window observations come from the base stream, afterwards from
the drift stream, and inside the window the choice is random with a smoothly
increasing probability.  A transition width of zero yields abrupt drift.

The blend is *index-aligned*: row ``i`` of the combined stream is row ``i``
(modulo the child length) of whichever child the sigmoid coin picks, so the
composition stays a pure function of the stream position -- chunk-invariant
and restart-deterministic like every other :class:`SeededStream`.  Child
streams are read through their pure ``_generate`` and never consumed, so the
same child instances can be shared by several compositions.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import SeededStream, Stream


def drift_sigmoid(offsets: np.ndarray, width: float) -> np.ndarray:
    """MOA's sigmoid hand-over probability.

    ``offsets`` are signed distances to the transition centre in the same
    unit as ``width`` (samples here, stream fractions in
    :class:`~repro.streams.scenarios.DriftInjector`).  The single source of
    the ``1 / (1 + exp(-4 d / w))`` formula; keep the scalar fast path
    ``DriftInjector._gradual_probability`` in sync when changing it.
    """
    exponent = -4.0 * np.asarray(offsets, dtype=float) / width
    return 1.0 / (1.0 + np.exp(np.clip(exponent, -500.0, 500.0)))


def wrapped_rows(stream: Stream, start: int, count: int) -> tuple[np.ndarray, np.ndarray]:
    """Rows ``[start, start + count)`` of a child stream, wrapping modulo its
    length (the composed stream may be longer than its children).

    Reads through :meth:`Stream.peek_rows`, so the result may alias the
    child's block cache -- treat it as read-only.
    """
    n = stream.n_samples
    X_parts: list[np.ndarray] = []
    y_parts: list[np.ndarray] = []
    position = start % n
    remaining = count
    while remaining > 0:
        take = min(remaining, n - position)
        X_part, y_part = stream.peek_rows(position, take)
        X_parts.append(X_part)
        y_parts.append(y_part)
        position = 0
        remaining -= take
    if len(X_parts) == 1:
        return X_parts[0], y_parts[0]
    return np.concatenate(X_parts), np.concatenate(y_parts)


class ConceptDriftStream(SeededStream):
    """Blend two streams to create a single stream with one concept drift.

    Parameters
    ----------
    base_stream:
        Stream providing the initial concept.
    drift_stream:
        Stream providing the post-drift concept.  Must have the same number
        of features and classes as ``base_stream``.
    position:
        Index of the centre of the transition.
    width:
        Width of the sigmoid transition window (0 or 1 = abrupt).
    n_samples:
        Total length; defaults to the base stream's length.
    seed:
        Random seed of the blending choices.
    """

    def __init__(
        self,
        base_stream: Stream,
        drift_stream: Stream,
        position: int,
        width: int = 1,
        n_samples: int | None = None,
        seed: int | None = None,
    ) -> None:
        if base_stream.n_features != drift_stream.n_features:
            raise ValueError("Streams must have the same number of features.")
        if base_stream.n_classes != drift_stream.n_classes:
            raise ValueError("Streams must have the same number of classes.")
        total = base_stream.n_samples if n_samples is None else int(n_samples)
        super().__init__(
            n_samples=total,
            n_features=base_stream.n_features,
            n_classes=base_stream.n_classes,
            seed=seed,
        )
        if not 0 <= position <= total:
            raise ValueError(f"position must be in [0, {total}], got {position!r}.")
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width!r}.")
        self.base_stream = base_stream
        self.drift_stream = drift_stream
        self.drift_position = int(position)
        self.width = max(int(width), 1)

    def drift_probabilities(self, indices: np.ndarray) -> np.ndarray:
        """Probability of drawing from the drift stream at each position."""
        return drift_sigmoid(
            np.asarray(indices, dtype=float) - self.drift_position, self.width
        )

    def drift_probability(self, index: int) -> float:
        """Probability of drawing from the drift stream at position ``index``."""
        return float(self.drift_probabilities(np.array([index]))[0])

    def _generate_block(
        self, rng: np.random.Generator, start: int, count: int, state: object
    ) -> tuple[np.ndarray, np.ndarray, object]:
        probabilities = self.drift_probabilities(np.arange(start, start + count))
        if probabilities.max() < 1e-15:
            from_drift = np.zeros(count, dtype=bool)
        elif probabilities.min() > 1.0 - 1e-15:
            from_drift = np.ones(count, dtype=bool)
        else:
            from_drift = rng.random(count) < probabilities
        if not from_drift.any():
            X, y = wrapped_rows(self.base_stream, start, count)
            return X, y, None
        if from_drift.all():
            X, y = wrapped_rows(self.drift_stream, start, count)
            return X, y, None
        X_base, y_base = wrapped_rows(self.base_stream, start, count)
        X_drift, y_drift = wrapped_rows(self.drift_stream, start, count)
        X = np.where(from_drift[:, None], X_drift, X_base)
        y = np.where(from_drift, y_drift, y_base)
        return X, y, None
