"""Table VI -- qualitative experiment summary.

Regenerates the ++ / + / − / −− ranking of Table VI across the four
categories (overall predictive performance, performance under known drift,
complexity/interpretability, computational efficiency), computed from the
same runs as Tables II, III and V.

Shape target: the DMT scores at or above the median ("+" or "++") for both
predictive-performance categories and for complexity, while paying with a
below-median efficiency score -- the trade-off the paper reports.
"""

from repro.experiments.tables import table6_summary


def test_table6_summary(benchmark, standalone_suite):
    records, text = benchmark.pedantic(
        table6_summary, args=(standalone_suite,), rounds=1, iterations=1
    )
    print("\n" + text)

    assert records
    valid = {"++", "+", "-", "--"}
    categories = [key for key in records[0] if key not in ("model", "_raw")]
    for record in records:
        for category in categories:
            assert record[category] in valid

    by_model = {record["model"]: record for record in records}
    if "DMT (ours)" in by_model:
        dmt = by_model["DMT (ours)"]
        positive = {"+", "++"}
        # At least two of the three quality categories should be positive.
        quality_scores = [
            dmt["Overall Pred. Performance"],
            dmt["Pred. Performance For Known Drift"],
            dmt["Complexity/Interpretability"],
        ]
        assert sum(score in positive for score in quality_scores) >= 2
