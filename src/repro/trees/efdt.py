"""EFDT -- Extremely Fast Decision Tree (Manapragada, Webb & Salehi, 2018).

Also known as the Hoeffding Anytime Tree.  EFDT differs from the VFDT in two
ways: (i) a leaf is split as soon as the best attribute is better than *not
splitting* with Hoeffding confidence (instead of better than the second-best
attribute), and (ii) inner nodes keep their attribute statistics and
periodically *re-evaluate* their split; if a different attribute has become
better with Hoeffding confidence, the subtree below is discarded and the
node is re-split (or demoted to a leaf).

Following the paper's experimental setup, the minimum number of observations
between re-evaluations of an inner node is 1000.
"""

from __future__ import annotations

import numpy as np

from repro.base import ComplexityReport
from repro.telemetry import TREE_SPLIT, TELEMETRY
from repro.trees.base import LeafNode, SplitNode, iter_nodes, tree_depth
from repro.trees.hoeffding import hoeffding_bound
from repro.trees.observers import SplitSuggestion
from repro.trees.vfdt import HoeffdingTreeClassifier


class EFDTSplitNode(SplitNode):
    """Split node that keeps learning statistics for later re-evaluation."""

    __slots__ = ("stats", "weight_at_last_reevaluation")

    def __init__(self, stats: LeafNode, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stats = stats
        self.weight_at_last_reevaluation = stats.total_weight


class ExtremelyFastDecisionTreeClassifier(HoeffdingTreeClassifier):
    """Hoeffding Anytime Tree for streaming classification.

    Parameters
    ----------
    reevaluation_period:
        Minimum number of observations an inner node must accumulate between
        re-evaluations of its split (1000 in the paper's experiments).
    grace_period, split_confidence, tie_threshold, leaf_prediction,
    split_criterion, n_split_points, max_depth, nominal_features:
        As in :class:`~repro.trees.vfdt.HoeffdingTreeClassifier`.
    """

    def __init__(
        self,
        grace_period: int = 200,
        split_confidence: float = 1e-7,
        tie_threshold: float = 0.05,
        leaf_prediction: str = "mc",
        split_criterion: str = "info_gain",
        n_split_points: int = 10,
        max_depth: int | None = None,
        nominal_features: set[int] | None = None,
        reevaluation_period: int = 1000,
        vectorized: bool = True,
    ) -> None:
        super().__init__(
            grace_period=grace_period,
            split_confidence=split_confidence,
            tie_threshold=tie_threshold,
            leaf_prediction=leaf_prediction,
            split_criterion=split_criterion,
            n_split_points=n_split_points,
            max_depth=max_depth,
            nominal_features=nominal_features,
            vectorized=vectorized,
        )
        if reevaluation_period < 1:
            raise ValueError(
                f"reevaluation_period must be >= 1, got {reevaluation_period!r}."
            )
        self.reevaluation_period = int(reevaluation_period)
        self.n_reevaluations = 0
        self.n_subtree_prunes = 0

    def reset(self) -> "ExtremelyFastDecisionTreeClassifier":
        super().reset()
        self.n_reevaluations = 0
        self.n_subtree_prunes = 0
        return self

    # ---------------------------------------------------------------- learn
    def _partial_fit_vectorized(self, X: np.ndarray, y_idx: np.ndarray) -> None:
        """EFDT keeps inner-node statistics alive along every root-to-leaf
        path, so each row updates ``O(depth)`` learning leaves and training
        cannot be chunked the way the plain VFDT is.  The vectorized flag
        still pays off: the split/re-evaluation sweeps (the dominant cost,
        re-run every ``reevaluation_period`` rows at *every* inner node) and
        batched inference use the structure-of-arrays kernels."""
        for row in range(len(X)):
            self._learn_one(X[row], int(y_idx[row]))

    def _learn_one(self, x: np.ndarray, y_idx: int) -> None:
        # Update statistics along the whole path (EFDT keeps inner-node
        # statistics alive), then let the leaf learn, then run checks
        # top-down as in the published algorithm.
        path: list[tuple[EFDTSplitNode | None, int]] = []
        node = self.root
        parent: SplitNode | None = None
        branch = 0
        while isinstance(node, SplitNode):
            if isinstance(node, EFDTSplitNode):
                node.stats.learn_one(x, y_idx, n_classes=max(self.n_classes_, 2))
            path.append((node, branch))
            parent = node
            branch = node.branch_for(x)
            child = node.children[branch]
            if child is None:
                child = self._new_leaf(depth=node.depth + 1)
                node.children[branch] = child
            node = child
        leaf = node
        leaf.learn_one(x, y_idx, n_classes=max(self.n_classes_, 2))

        # Re-evaluate the inner nodes on the path (top-down).
        grand_parent: SplitNode | None = None
        grand_branch = 0
        for split_node, _ in path:
            if not isinstance(split_node, EFDTSplitNode):
                grand_parent, grand_branch = split_node, split_node.branch_for(x)
                continue
            weight = split_node.stats.total_weight
            if (
                weight - split_node.weight_at_last_reevaluation
                >= self.reevaluation_period
            ):
                split_node.weight_at_last_reevaluation = weight
                replaced = self._reevaluate_split(
                    split_node, grand_parent, grand_branch
                )
                if replaced:
                    # The subtree below was rebuilt; stop walking stale nodes.
                    return
            grand_parent, grand_branch = split_node, split_node.branch_for(x)

        # Leaf split attempt.
        if self._can_split(leaf):
            weight_seen = leaf.total_weight
            if weight_seen - leaf.weight_at_last_split_attempt >= self.grace_period:
                leaf.weight_at_last_split_attempt = weight_seen
                self._attempt_split(leaf, parent, branch)

    # ---------------------------------------------------------------- split
    def _attempt_split(
        self, leaf: LeafNode, parent: SplitNode | None, branch: int
    ) -> "EFDTSplitNode | None":
        """EFDT splits as soon as the best attribute beats *not splitting*."""
        suggestions = leaf.best_split_suggestions(
            self._criterion, vectorized=self.vectorized
        )
        real = [s for s in suggestions if s.feature != -1]
        if not real:
            return None
        best = max(real, key=lambda suggestion: suggestion.merit)
        bound = hoeffding_bound(
            self._criterion.merit_range(leaf.class_dist),
            self.split_confidence,
            leaf.total_weight,
        )
        null_merit = 0.0
        if best.merit - null_merit > bound or bound < self.tie_threshold:
            if best.merit > 0:
                return self._split_leaf(leaf, best, parent, branch)
        return None

    def _split_leaf(
        self,
        leaf: LeafNode,
        suggestion: SplitSuggestion,
        parent: SplitNode | None,
        branch: int,
    ) -> "EFDTSplitNode":
        stats = self._new_leaf(depth=leaf.depth, initial_dist=leaf.class_dist)
        stats.observers = leaf.observers
        new_split = EFDTSplitNode(
            stats,
            feature=suggestion.feature,
            threshold=suggestion.threshold,
            is_nominal=suggestion.is_nominal,
            class_dist=leaf.class_dist.copy(),
            depth=leaf.depth,
        )
        for child_idx in range(2):
            initial = (
                suggestion.children_dists[child_idx]
                if len(suggestion.children_dists) == 2
                else None
            )
            new_split.children[child_idx] = self._new_leaf(
                depth=leaf.depth + 1, initial_dist=initial
            )
        self._replace_child(parent, branch, new_split)
        self.n_split_events += 1
        if TELEMETRY.enabled:
            TELEMETRY.emit(
                TREE_SPLIT,
                model=type(self).__name__,
                feature=int(suggestion.feature),
                threshold=float(suggestion.threshold),
                depth=int(leaf.depth),
            )
            TELEMETRY.counter(
                "repro.tree.splits_total", model=type(self).__name__
            ).inc()
        return new_split

    # ----------------------------------------------------------- reevaluate
    def _reevaluate_split(
        self,
        node: EFDTSplitNode,
        parent: SplitNode | None,
        branch: int,
    ) -> bool:
        """Re-check an existing split; prune / re-split when it became stale.

        Returns ``True`` when the node was replaced.
        """
        self.n_reevaluations += 1
        suggestions = node.stats.best_split_suggestions(
            self._criterion, vectorized=self.vectorized
        )
        real = [s for s in suggestions if s.feature != -1]
        if not real:
            return False
        best = max(real, key=lambda suggestion: suggestion.merit)
        current = max(
            (s for s in real if s.feature == node.feature),
            key=lambda suggestion: suggestion.merit,
            default=None,
        )
        current_merit = current.merit if current is not None else 0.0
        bound = hoeffding_bound(
            self._criterion.merit_range(node.stats.class_dist),
            self.split_confidence,
            node.stats.total_weight,
        )
        if best.merit <= 0 and 0.0 - current_merit > bound:
            # Not splitting at all is better: demote the node to a leaf.
            demoted = self._new_leaf(
                depth=node.depth, initial_dist=node.stats.class_dist
            )
            demoted.observers = node.stats.observers
            self._replace_child(parent, branch, demoted)
            self.n_subtree_prunes += 1
            if TELEMETRY.enabled:
                self._telemetry_prune("subtree", node.depth)
            return True
        if best.feature != node.feature and best.merit - current_merit > bound:
            # A different attribute is now clearly better: kill the subtree
            # and re-split on the new best attribute.
            self._split_stats_node(node, best, parent, branch)
            self.n_subtree_prunes += 1
            if TELEMETRY.enabled:
                self._telemetry_prune("resplit", node.depth)
            return True
        return False

    def _split_stats_node(
        self,
        node: EFDTSplitNode,
        suggestion: SplitSuggestion,
        parent: SplitNode | None,
        branch: int,
    ) -> None:
        stats = self._new_leaf(depth=node.depth, initial_dist=node.stats.class_dist)
        stats.observers = node.stats.observers
        new_split = EFDTSplitNode(
            stats,
            feature=suggestion.feature,
            threshold=suggestion.threshold,
            is_nominal=suggestion.is_nominal,
            class_dist=node.stats.class_dist.copy(),
            depth=node.depth,
        )
        for child_idx in range(2):
            initial = (
                suggestion.children_dists[child_idx]
                if len(suggestion.children_dists) == 2
                else None
            )
            new_split.children[child_idx] = self._new_leaf(
                depth=node.depth + 1, initial_dist=initial
            )
        self._replace_child(parent, branch, new_split)
        self.n_split_events += 1
        if TELEMETRY.enabled:
            TELEMETRY.emit(
                TREE_SPLIT,
                model=type(self).__name__,
                feature=int(suggestion.feature),
                threshold=float(suggestion.threshold),
                depth=int(node.depth),
            )
            TELEMETRY.counter(
                "repro.tree.splits_total", model=type(self).__name__
            ).inc()

    # ------------------------------------------------------- interpretability
    def complexity(self) -> ComplexityReport:
        if self.root is None:
            return ComplexityReport(n_splits=0, n_parameters=0)
        nodes = iter_nodes(self.root)
        n_inner = sum(1 for node in nodes if isinstance(node, SplitNode))
        n_leaves = sum(1 for node in nodes if isinstance(node, LeafNode) and not
                       self._is_stats_holder(node))
        n_classes = max(self.n_classes_, 2)
        if self.leaf_prediction == "mc":
            leaf_splits, leaf_params = 0, 1
        else:
            leaf_splits = 1 if n_classes == 2 else n_classes
            leaf_params = self.n_features_ * (1 if n_classes == 2 else n_classes)
        return ComplexityReport(
            n_splits=n_inner + leaf_splits * n_leaves,
            n_parameters=n_inner + leaf_params * n_leaves,
            n_nodes=n_inner + n_leaves,
            n_leaves=n_leaves,
            depth=tree_depth(self.root),
        )

    def _is_stats_holder(self, leaf: LeafNode) -> bool:
        """Stats holders of EFDT split nodes are not tree leaves."""
        if self.root is None:
            return False
        stack = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, EFDTSplitNode):
                if node.stats is leaf:
                    return True
                stack.extend(child for child in node.children if child is not None)
            elif isinstance(node, SplitNode):
                stack.extend(child for child in node.children if child is not None)
        return False
