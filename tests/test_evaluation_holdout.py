"""Tests for the periodic-holdout evaluator."""

import numpy as np
import pytest

from repro.base import ComplexityReport, StreamClassifier
from repro.core.dmt import DynamicModelTree
from repro.evaluation.holdout import HoldoutEvaluator
from repro.streams.base import ArrayStream
from repro.streams.realworld import make_surrogate


class _RecordingClassifier(StreamClassifier):
    """Stub that records which samples were used for training."""

    def __init__(self):
        super().__init__()
        self.trained_rows = 0
        self.predicted_rows = 0

    def partial_fit(self, X, y, classes=None):
        X, y = self._validate_input(X, y)
        self._update_classes(y, classes)
        self.trained_rows += len(y)
        return self

    def predict_proba(self, X):
        X, _ = self._validate_input(X)
        if self.classes_ is None:
            raise RuntimeError("not fitted")
        self.predicted_rows += len(X)
        proba = np.zeros((len(X), self.n_classes_))
        proba[:, 0] = 1.0
        return proba

    def complexity(self):
        return ComplexityReport(n_splits=2, n_parameters=3)

    def reset(self):
        return self


def _stream(n=2400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 3))
    y = (X[:, 0] > 0.5).astype(int)
    return ArrayStream(X, y)


class TestHoldoutEvaluator:
    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            HoldoutEvaluator(test_every=0)
        with pytest.raises(ValueError):
            HoldoutEvaluator(test_size=0)
        with pytest.raises(ValueError):
            HoldoutEvaluator(train_batch_size=0)

    def test_train_and_test_sample_accounting(self):
        """With test_every=1000 and test_size=200 on 2400 samples the split is
        1000 train / 200 test / 1000 train / 200 test."""
        model = _RecordingClassifier()
        result = HoldoutEvaluator(test_every=1000, test_size=200).evaluate(
            model, _stream(2400)
        )
        assert result.n_train_samples == 2000
        assert result.n_test_samples == 400
        assert model.trained_rows == 2000
        assert model.predicted_rows == 400
        assert len(result.f1_trace) == 2
        assert len(result.n_splits_trace) == 2

    def test_holdout_samples_are_not_trained_on(self):
        model = _RecordingClassifier()
        result = HoldoutEvaluator(test_every=500, test_size=100).evaluate(
            model, _stream(1800)
        )
        assert model.trained_rows + model.predicted_rows <= 1800
        assert result.n_train_samples == model.trained_rows

    def test_stream_shorter_than_one_period(self):
        model = _RecordingClassifier()
        result = HoldoutEvaluator(test_every=5000, test_size=100).evaluate(
            model, _stream(800)
        )
        assert result.n_train_samples == 800
        assert result.n_test_samples == 0
        assert result.f1_trace == []

    def test_summary_fields(self):
        result = HoldoutEvaluator(test_every=500, test_size=50).evaluate(
            _RecordingClassifier(), _stream(1200), model_name="stub", dataset_name="toy"
        )
        summary = result.summary()
        assert summary["model"] == "stub"
        assert {"f1_mean", "accuracy_mean", "n_splits_mean"} <= set(summary)
        assert summary["n_splits_mean"] == pytest.approx(2.0)

    def test_dmt_learns_under_holdout_protocol(self):
        stream = make_surrogate("electricity", scale=0.05, seed=3)
        model = DynamicModelTree(random_state=3)
        result = HoldoutEvaluator(test_every=400, test_size=100).evaluate(model, stream)
        assert result.n_test_samples > 0
        assert 0.0 <= result.f1_mean <= 1.0
        # After a couple of training periods the model should beat coin flips.
        assert result.accuracy_trace[-1] > 0.5
