"""VFDT -- the Very Fast Decision Tree / Hoeffding Tree (Domingos & Hulten, 2000).

This is the basic Hoeffding Tree baseline of the paper, evaluated with
majority-class leaves (``leaf_prediction="mc"``) and with adaptive Naive
Bayes leaves (``leaf_prediction="nba"``, Gama et al. 2003).  Only binary
splits are produced, matching the paper's experimental configuration.

Training and inference are vectorized by default: batches are partitioned
once per split node so every leaf receives one sub-batch, leaf statistics
are updated in bulk between split attempts, and candidate splits are scored
with one sweep over all thresholds of all features.  ``vectorized=False``
retains the original per-row / per-threshold reference loops; both paths are
bit-identical (same splits, same predictions, same
``deterministic_summary()``).
"""

from __future__ import annotations

import numpy as np

from repro.base import ComplexityReport, StreamClassifier
from repro.trees.base import (
    LeafNode,
    SplitNode,
    iter_nodes,
    route_batch_groups,
    tree_depth,
)
from repro.trees.criteria import GiniCriterion, InfoGainCriterion, SplitCriterion
from repro.telemetry import (
    TREE_ALTERNATE_STARTED,
    TREE_PRUNE,
    TREE_SPLIT,
    TREE_SWAP,
    TELEMETRY,
)
from repro.trees.hoeffding import hoeffding_bound
from repro.trees.observers import SplitSuggestion
from repro.utils.numerics import np_pairwise_sum
from repro.utils.validation import check_in_range, check_positive

_CRITERIA = {"info_gain": InfoGainCriterion, "gini": GiniCriterion}


class HoeffdingTreeClassifier(StreamClassifier):
    """Incremental Hoeffding Tree for streaming classification.

    Parameters
    ----------
    grace_period:
        Number of observations a leaf must accumulate between split attempts.
    split_confidence:
        Significance level ``δ`` of the Hoeffding bound.
    tie_threshold:
        Tie-breaking threshold ``τ``: split anyway once the bound drops below
        this value.
    leaf_prediction:
        ``"mc"`` (majority class, the paper's VFDT(MC)), ``"nb"`` or ``"nba"``
        (adaptive Naive Bayes, the paper's VFDT(NBA)).
    split_criterion:
        ``"info_gain"`` (default) or ``"gini"``.
    n_split_points:
        Candidate thresholds evaluated per numeric feature.
    max_depth:
        Optional hard limit on the tree depth.
    nominal_features:
        Indices of nominal features (observed by value instead of Gaussian).
    vectorized:
        Whether training and inference use the batched kernels (the default)
        or the per-row reference loops.  Both paths are bit-identical; the
        reference exists for verification and benchmarking.
    """

    #: Class-level fallback so payloads written before the flag existed load.
    vectorized = True

    def __init__(
        self,
        grace_period: int = 200,
        split_confidence: float = 1e-7,
        tie_threshold: float = 0.05,
        leaf_prediction: str = "mc",
        split_criterion: str = "info_gain",
        n_split_points: int = 10,
        max_depth: int | None = None,
        nominal_features: set[int] | None = None,
        vectorized: bool = True,
    ) -> None:
        super().__init__()
        check_positive(grace_period, "grace_period")
        check_in_range(split_confidence, "split_confidence", 0.0, 1.0, inclusive=False)
        check_in_range(tie_threshold, "tie_threshold", 0.0, 1.0)
        if split_criterion not in _CRITERIA:
            raise ValueError(
                f"split_criterion must be one of {sorted(_CRITERIA)}, "
                f"got {split_criterion!r}."
            )
        if leaf_prediction not in {"mc", "nb", "nba"}:
            raise ValueError(
                "leaf_prediction must be one of 'mc', 'nb', 'nba', "
                f"got {leaf_prediction!r}."
            )
        self.grace_period = int(grace_period)
        self.split_confidence = float(split_confidence)
        self.tie_threshold = float(tie_threshold)
        self.leaf_prediction = leaf_prediction
        self.split_criterion = split_criterion
        self.n_split_points = int(n_split_points)
        self.max_depth = max_depth
        self.nominal_features = set(nominal_features or set())
        self.vectorized = bool(vectorized)
        self.root: LeafNode | SplitNode | None = None
        self._criterion: SplitCriterion = _CRITERIA[split_criterion]()
        self.n_split_events = 0

    # -------------------------------------------------------------- fitting
    def reset(self) -> "HoeffdingTreeClassifier":
        self.root = None
        self.classes_ = None
        self.n_features_ = None
        self.n_split_events = 0
        return self

    def _new_leaf(
        self, depth: int, initial_dist: np.ndarray | None = None
    ) -> LeafNode:
        return LeafNode(
            n_classes=max(self.n_classes_, 2),
            n_features=self.n_features_,
            leaf_prediction=self.leaf_prediction,
            n_split_points=self.n_split_points,
            nominal_features=self.nominal_features,
            depth=depth,
            initial_dist=initial_dist,
        )

    def partial_fit(
        self, X: np.ndarray, y: np.ndarray, classes: np.ndarray | None = None
    ) -> "HoeffdingTreeClassifier":
        X, y = self._validate_input(X, y)
        self._update_classes(y, classes)
        if self.root is None:
            self.root = self._new_leaf(depth=0)
        y_idx = self.class_index(y)
        if self.vectorized:
            self._partial_fit_vectorized(X, y_idx)
        else:
            for row in range(len(X)):
                self._learn_one(X[row], int(y_idx[row]))
        return self

    def _learn_one(self, x: np.ndarray, y_idx: int) -> None:
        leaf, parent, branch = self._sort_to_leaf(x)
        leaf.learn_one(x, y_idx, n_classes=max(self.n_classes_, 2))
        if self._can_split(leaf):
            weight_seen = leaf.total_weight
            if (
                weight_seen - leaf.weight_at_last_split_attempt
                >= self.grace_period
            ):
                leaf.weight_at_last_split_attempt = weight_seen
                self._attempt_split(leaf, parent, branch)

    # ---------------------------------------------------- vectorized fitting
    def _partial_fit_vectorized(self, X: np.ndarray, y_idx: np.ndarray) -> None:
        """Batched training, bit-identical to the per-row reference loop.

        The batch is partitioned once per split node; each leaf then learns
        its rows in bulk up to the next split-attempt trigger (computed by an
        exact scalar simulation of the per-row weight/purity checks).  When
        an attempt splits the leaf, the not-yet-consumed rows are re-routed
        through the fresh split node.
        """
        # Plain-float views of the batch, materialised only when a small
        # group actually takes one of the scalar paths below (large batches
        # on shallow trees never need them).
        lists_cache: list = [None, None]
        stack: list[tuple[object, SplitNode | None, int, np.ndarray]] = [
            (self.root, None, 0, np.arange(len(X)))
        ]
        while stack:
            node, parent, branch, rows = stack.pop()
            if isinstance(node, SplitNode):
                if len(rows) <= 8:
                    X_list, _ = self._batch_lists(X, y_idx, lists_cache)
                    # A mask partition touches every split node below; for a
                    # handful of rows a per-row descent over plain Python
                    # floats is cheaper (routing has no floating-point
                    # accumulation, so either strategy lands the rows on the
                    # same leaves).
                    groups: dict[int, list] = {}
                    for row in rows.tolist():
                        values = X_list[row]
                        walker = node
                        walk_parent, walk_branch = parent, branch
                        while isinstance(walker, SplitNode):
                            walk_parent = walker
                            value = values[walker.feature]
                            if walker.is_nominal:
                                walk_branch = 0 if value == walker.threshold else 1
                            else:
                                walk_branch = 0 if value <= walker.threshold else 1
                            child = walker.children[walk_branch]
                            if child is None:
                                child = self._new_leaf(depth=walker.depth + 1)
                                walker.children[walk_branch] = child
                            walker = child
                        entry = groups.get(id(walker))
                        if entry is None:
                            groups[id(walker)] = [walker, walk_parent, walk_branch, [row]]
                        else:
                            entry[3].append(row)
                    for leaf, leaf_parent, leaf_branch, row_list in groups.values():
                        stack.append(
                            (leaf, leaf_parent, leaf_branch, np.asarray(row_list))
                        )
                    continue
                mask = node.branch_mask(X, rows)
                for child_branch, child_rows in (
                    (0, rows[mask]),
                    (1, rows[~mask]),
                ):
                    if not len(child_rows):
                        continue
                    child = node.children[child_branch]
                    if child is None:
                        child = self._new_leaf(depth=node.depth + 1)
                        node.children[child_branch] = child
                    stack.append((child, node, child_branch, child_rows))
                continue
            self._learn_leaf_group(
                node, parent, branch, rows, X, y_idx, lists_cache, stack
            )

    @staticmethod
    def _batch_lists(
        X: np.ndarray, y_idx: np.ndarray, lists_cache: list
    ) -> tuple[list, list]:
        """Lazily materialised ``(X.tolist(), y_idx.tolist())`` of the batch."""
        if lists_cache[0] is None:
            lists_cache[0] = X.tolist()
            lists_cache[1] = y_idx.tolist()
        return lists_cache[0], lists_cache[1]

    def _learn_leaf_group(
        self,
        leaf: LeafNode,
        parent: SplitNode | None,
        branch: int,
        rows: np.ndarray,
        X: np.ndarray,
        y_idx: np.ndarray,
        lists_cache: list,
        stack: list,
    ) -> None:
        n_classes = max(self.n_classes_, 2)
        if not leaf.supports_bulk_learning:
            # "nba" bookkeeping is sequential; keep the per-row loop but stay
            # inside the batched routing (re-routing after a split).
            for position in range(len(rows)):
                row = rows[position]
                leaf.learn_one(X[row], int(y_idx[row]), n_classes=n_classes)
                if self._can_split(leaf):
                    weight_seen = leaf.total_weight
                    if (
                        weight_seen - leaf.weight_at_last_split_attempt
                        >= self.grace_period
                    ):
                        leaf.weight_at_last_split_attempt = weight_seen
                        new_node = self._attempt_split(leaf, parent, branch)
                        if new_node is not None:
                            if position + 1 < len(rows):
                                stack.append(
                                    (new_node, parent, branch, rows[position + 1 :])
                                )
                            return
            return

        leaf._grow_classes(n_classes)
        if self.max_depth is not None and leaf.depth >= self.max_depth:
            # The leaf can never split: no triggers to scan for.
            leaf.learn_batch(X[rows], y_idx[rows], n_classes)
            return

        if leaf.leaf_prediction == "mc" and len(rows) <= 16:
            # Tiny sub-batches (deep trees, small batches): the chunked
            # machinery below costs more than it saves, so run a lean
            # scalar loop -- the same mirror/observer primitives, no numpy
            # slicing.  Bit-identical to the chunked and per-row paths.
            X_list, y_list = self._batch_lists(X, y_idx, lists_cache)
            self._learn_leaf_group_small(
                leaf, parent, branch, rows, X_list, y_list, stack
            )
            return

        # Scalar simulation of the per-row trigger checks: the Python floats
        # track the numpy class counts exactly (unit increments are exact)
        # and np_pairwise_sum reproduces ndarray.sum() bit-for-bit.
        dist = leaf.class_dist.tolist()
        nonzero = 0
        for value in dist:
            if value != 0.0:
                nonzero += 1
        is_mc = leaf.leaf_prediction == "mc"
        last_attempt = leaf.weight_at_last_split_attempt
        grace = self.grace_period
        y_rows = y_idx[rows].tolist()
        # numpy sums sequentially below 8 elements; inline that common case.
        small_dist = len(dist) < 8
        position = 0
        total_rows = len(rows)
        while position < total_rows:
            trigger = None
            trigger_weight = 0.0
            # Rows far below the grace boundary cannot trigger an attempt:
            # every row adds exactly 1.0 to the leaf weight, so (with a
            # two-row margin for pairwise-summation rounding) the deficit
            # bounds how many rows can be consumed without any check.
            if small_dist:
                current_weight = 0.0
                for value in dist:
                    current_weight += value
            else:
                current_weight = np_pairwise_sum(dist)
            skip = min(
                int(grace - (current_weight - last_attempt)) - 2,
                total_rows - position,
            )
            scan_from = position
            if skip > 0:
                for index in range(position, position + skip):
                    class_idx = y_rows[index]
                    if dist[class_idx] == 0.0:
                        nonzero += 1
                    dist[class_idx] += 1.0
                scan_from = position + skip
            for index in range(scan_from, total_rows):
                class_idx = y_rows[index]
                if dist[class_idx] == 0.0:
                    nonzero += 1
                dist[class_idx] += 1.0
                if small_dist:
                    weight_seen = 0.0
                    for value in dist:
                        weight_seen += value
                else:
                    weight_seen = np_pairwise_sum(dist)
                if nonzero > 1 and weight_seen - last_attempt >= grace:
                    trigger = index
                    trigger_weight = weight_seen
                    break
            if trigger is None:
                tail = rows[position:]
                if is_mc:
                    # The scanner's Python mirror already holds the exact
                    # final class counts; write them back and feed only the
                    # observer store.
                    leaf.class_dist[:] = dist
                    leaf.observers.update_batch(
                        X[tail], None, y_list=y_rows[position:]
                    )
                else:
                    leaf.learn_batch(X[tail], y_idx[tail], n_classes)
                return
            chunk = rows[position : trigger + 1]
            if is_mc:
                leaf.class_dist[:] = dist
                leaf.observers.update_batch(
                    X[chunk], None, y_list=y_rows[position : trigger + 1]
                )
            else:
                leaf.learn_batch(X[chunk], y_idx[chunk], n_classes)
            leaf.weight_at_last_split_attempt = last_attempt = trigger_weight
            new_node = self._attempt_split(leaf, parent, branch)
            if new_node is not None:
                if trigger + 1 < total_rows:
                    stack.append((new_node, parent, branch, rows[trigger + 1 :]))
                return
            position = trigger + 1

    def _learn_leaf_group_small(
        self,
        leaf: LeafNode,
        parent: SplitNode | None,
        branch: int,
        rows: np.ndarray,
        X_list: list,
        y_list: list,
        stack: list,
    ) -> None:
        grace = self.grace_period
        last_attempt = leaf.weight_at_last_split_attempt
        observers = leaf.observers
        dist = leaf.class_dist.tolist()
        small_dist = len(dist) < 8
        nonzero = 0
        for value in dist:
            if value != 0.0:
                nonzero += 1
        # Inline the all-numeric unit-weight branch of
        # LeafObservers.update_row: per-row method dispatch is the largest
        # remaining cost of this loop.  grow_classes appends to the same
        # list objects, so the bindings below survive class growth.
        plain_store = not observers.nominal_features
        weights_by_class = observers._weights
        means_by_class = observers._means
        m2_by_class = observers._m2
        mins = observers._mins
        maxs = observers._maxs
        row_list = rows.tolist()
        total_rows = len(row_list)
        for position in range(total_rows):
            row = row_list[position]
            class_idx = y_list[row]
            if dist[class_idx] == 0.0:
                nonzero += 1
            dist[class_idx] += 1.0
            if plain_store:
                if class_idx >= observers.n_classes:
                    observers.grow_classes(class_idx + 1)
                weights = weights_by_class[class_idx]
                means = means_by_class[class_idx]
                m2 = m2_by_class[class_idx]
                for feature, value in enumerate(X_list[row]):
                    new_weight = weights[feature] + 1.0
                    delta = value - means[feature]
                    new_mean = means[feature] + delta / new_weight
                    m2[feature] += delta * (value - new_mean)
                    means[feature] = new_mean
                    weights[feature] = new_weight
                    if value < mins[feature]:
                        mins[feature] = value
                    if value > maxs[feature]:
                        maxs[feature] = value
            else:
                observers.update_row(X_list[row], class_idx, 1.0)
            if nonzero > 1:
                if small_dist:
                    weight_seen = 0.0
                    for value in dist:
                        weight_seen += value
                else:
                    weight_seen = np_pairwise_sum(dist)
                if weight_seen - last_attempt >= grace:
                    leaf.class_dist[:] = dist
                    leaf.weight_at_last_split_attempt = last_attempt = weight_seen
                    new_node = self._attempt_split(leaf, parent, branch)
                    if new_node is not None:
                        if position + 1 < total_rows:
                            stack.append(
                                (new_node, parent, branch, rows[position + 1 :])
                            )
                        return
        leaf.class_dist[:] = dist

    def _can_split(self, leaf: LeafNode) -> bool:
        if leaf.is_pure:
            return False
        if self.max_depth is not None and leaf.depth >= self.max_depth:
            return False
        return True

    def _sort_to_leaf(
        self, x: np.ndarray
    ) -> tuple[LeafNode, SplitNode | None, int]:
        """Walk the tree and return (leaf, parent split node, branch index)."""
        return self._descend_from(self.root, x)

    def _descend_from(
        self, node, x: np.ndarray
    ) -> tuple[LeafNode, SplitNode | None, int]:
        """Walk from ``node`` to the leaf for ``x``, creating missing children."""
        parent: SplitNode | None = None
        branch = 0
        while isinstance(node, SplitNode):
            parent = node
            branch = node.branch_for(x)
            child = node.children[branch]
            if child is None:
                child = self._new_leaf(depth=node.depth + 1)
                node.children[branch] = child
            node = child
        return node, parent, branch

    # ---------------------------------------------------------------- split
    def _attempt_split(
        self, leaf: LeafNode, parent: SplitNode | None, branch: int
    ) -> SplitNode | None:
        """Try to split ``leaf``; return the new split node if one was made."""
        suggestions = leaf.best_split_suggestions(
            self._criterion, vectorized=self.vectorized
        )
        suggestions.sort(key=lambda suggestion: suggestion.merit)
        if len(suggestions) < 2:
            return None
        best, second = suggestions[-1], suggestions[-2]
        bound = hoeffding_bound(
            self._criterion.merit_range(leaf.class_dist),
            self.split_confidence,
            leaf.total_weight,
        )
        should_split = best.feature != -1 and best.merit > 0 and (
            best.merit - second.merit > bound or bound < self.tie_threshold
        )
        if should_split:
            return self._split_leaf(leaf, best, parent, branch)
        return None

    def _split_leaf(
        self,
        leaf: LeafNode,
        suggestion: SplitSuggestion,
        parent: SplitNode | None,
        branch: int,
    ) -> SplitNode:
        new_split = SplitNode(
            feature=suggestion.feature,
            threshold=suggestion.threshold,
            is_nominal=suggestion.is_nominal,
            class_dist=leaf.class_dist.copy(),
            depth=leaf.depth,
        )
        for child_idx in range(2):
            initial = (
                suggestion.children_dists[child_idx]
                if len(suggestion.children_dists) == 2
                else None
            )
            new_split.children[child_idx] = self._new_leaf(
                depth=leaf.depth + 1, initial_dist=initial
            )
        self._replace_child(parent, branch, new_split)
        self.n_split_events += 1
        if TELEMETRY.enabled:
            TELEMETRY.emit(
                TREE_SPLIT,
                model=type(self).__name__,
                feature=int(suggestion.feature),
                threshold=float(suggestion.threshold),
                depth=int(leaf.depth),
            )
            TELEMETRY.counter(
                "repro.tree.splits_total", model=type(self).__name__
            ).inc()
        return new_split

    def _replace_child(
        self, parent: SplitNode | None, branch: int, new_node
    ) -> None:
        if parent is None:
            self.root = new_node
        else:
            parent.children[branch] = new_node

    # ------------------------------------------------------------ telemetry
    # Call sites must guard on ``TELEMETRY.enabled`` so the disabled path
    # stays a single attribute read.
    def _telemetry_alternate_started(self, depth: int) -> None:
        TELEMETRY.emit(
            TREE_ALTERNATE_STARTED, model=type(self).__name__, depth=int(depth)
        )
        TELEMETRY.counter(
            "repro.tree.alternates_started_total", model=type(self).__name__
        ).inc()

    def _telemetry_swap(self, depth: int) -> None:
        TELEMETRY.emit(TREE_SWAP, model=type(self).__name__, depth=int(depth))
        TELEMETRY.counter(
            "repro.tree.swaps_total", model=type(self).__name__
        ).inc()

    def _telemetry_prune(self, reason: str, depth: int) -> None:
        TELEMETRY.emit(
            TREE_PRUNE,
            model=type(self).__name__,
            reason=reason,
            depth=int(depth),
        )
        TELEMETRY.counter(
            "repro.tree.prunes_total", model=type(self).__name__
        ).inc()

    # ------------------------------------------------------------ inference
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X, _ = self._validate_input(X)
        if self.root is None or self.classes_ is None:
            raise RuntimeError("predict_proba() called before partial_fit().")
        n_classes = max(self.n_classes_, 2)
        proba = np.zeros((len(X), self.n_classes_))
        if self.vectorized:
            for node, rows in route_batch_groups(self.root, X):
                if isinstance(node, SplitNode):
                    # Missing child on the routed branch: fall back to the
                    # split node's class distribution, as the per-row walk
                    # does when it cannot descend further.
                    proba[rows] = self._split_node_proba(node, n_classes)[
                        : self.n_classes_
                    ]
                else:
                    proba[rows] = node.predict_proba_batch(X[rows], n_classes)[
                        :, : self.n_classes_
                    ]
        else:
            for row, x in enumerate(X):
                node = self.root
                while isinstance(node, SplitNode):
                    child = node.child_for(x)
                    if child is None:
                        break
                    node = child
                if isinstance(node, SplitNode):
                    leaf_proba = self._split_node_proba(node, n_classes)
                else:
                    leaf_proba = node.predict_proba(x, n_classes)
                proba[row] = leaf_proba[: self.n_classes_]
        row_sums = proba.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        return proba / row_sums

    @staticmethod
    def _split_node_proba(node: SplitNode, n_classes: int) -> np.ndarray:
        dist = node.class_dist
        total = dist.sum()
        if total == 0:
            return np.full(n_classes, 1.0 / n_classes)
        return np.pad(dist, (0, max(n_classes - len(dist), 0)))[:n_classes] / total

    # ------------------------------------------------------- interpretability
    def _count_nodes(self) -> tuple[int, int]:
        nodes = iter_nodes(self.root)
        n_inner = sum(1 for node in nodes if isinstance(node, SplitNode))
        n_leaves = sum(1 for node in nodes if isinstance(node, LeafNode))
        return n_inner, n_leaves

    def complexity(self) -> ComplexityReport:
        """Complexity under the paper's counting rules (Section VI-D2)."""
        if self.root is None:
            return ComplexityReport(n_splits=0, n_parameters=0)
        n_inner, n_leaves = self._count_nodes()
        n_classes = max(self.n_classes_, 2)
        if self.leaf_prediction == "mc":
            leaf_splits = 0
            leaf_params = 1
        else:
            leaf_splits = 1 if n_classes == 2 else n_classes
            leaf_params = self.n_features_ * (1 if n_classes == 2 else n_classes)
        return ComplexityReport(
            n_splits=n_inner + leaf_splits * n_leaves,
            n_parameters=n_inner + leaf_params * n_leaves,
            n_nodes=n_inner + n_leaves,
            n_leaves=n_leaves,
            depth=tree_depth(self.root),
        )

    @property
    def n_nodes(self) -> int:
        n_inner, n_leaves = self._count_nodes()
        return n_inner + n_leaves

    @property
    def n_leaves(self) -> int:
        return self._count_nodes()[1]

    @property
    def depth(self) -> int:
        return tree_depth(self.root)
