"""The process-wide telemetry singleton and its on/off switch.

All instrumentation in the package funnels through one module-level
:data:`TELEMETRY` object.  It starts *disabled*: every instrumented call
site guards with ``if TELEMETRY.enabled:`` (a plain attribute read) before
touching metrics or events, and :meth:`Telemetry.span` hands out a shared
no-op context manager, so the disabled hot path allocates nothing and reads
no clocks.

Enabling telemetry must never change what a model computes: the subsystem
reads no random generators and writes nothing into persisted model state
(timestamps only appear in telemetry's own exports), so
``deterministic_summary()`` of any run is bit-identical with telemetry on
or off -- a property pinned by ``tests/test_telemetry_determinism.py``.

Environment switches (read once at import):

``REPRO_TELEMETRY=1``
    Enable telemetry at process start (worker processes inherit this).
``REPRO_TELEMETRY_EVENTS=/path/events.jsonl``
    Stream every event to a JSONL sink; ``{pid}`` in the path expands to
    the process id so parallel workers get one file each.
"""

from __future__ import annotations

import os

from repro.telemetry.events import Event, EventLog
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracing import NOOP_SPAN, SpanHandle, Tracer


class Telemetry:
    """Metrics registry + event log + tracer behind one enable flag."""

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.events = EventLog()
        self.tracer = Tracer(self.registry)

    # ------------------------------------------------------------- lifecycle
    def enable(self, events_path: str | None = None) -> "Telemetry":
        """Turn instrumentation on (optionally streaming events to JSONL)."""
        if events_path:
            self.events.open_sink(events_path)
        self.enabled = True
        return self

    def disable(self) -> "Telemetry":
        """Turn instrumentation off; keeps collected data for export."""
        self.enabled = False
        self.events.flush()
        return self

    def reset(self) -> "Telemetry":
        """Disable and drop all collected metrics and events."""
        self.enabled = False
        self.registry.clear()
        self.events.close_sink()
        self.events.clear()
        return self

    # ----------------------------------------------------------- primitives
    def counter(self, name: str, /, **labels: object) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, /, **labels: object) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(
        self,
        name: str,
        /,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self.registry.histogram(name, buckets, **labels)

    def emit(self, kind: str, **fields: object) -> Event:
        return self.events.emit(kind, **fields)

    def span(self, name: str) -> SpanHandle:
        """Timed context manager; the shared no-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return self.tracer.span(name)

    # -------------------------------------------------------------- exports
    def export_run(self, directory: str | os.PathLike[str]) -> dict[str, str]:
        """Write ``metrics.prom``, ``metrics.json`` and ``events.jsonl``.

        Returns the mapping of artefact name to written path; the directory
        is created when missing.  This is the layout
        ``python -m repro.telemetry report`` consumes.
        """
        import json

        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        paths = {
            "metrics.prom": os.path.join(directory, "metrics.prom"),
            "metrics.json": os.path.join(directory, "metrics.json"),
            "events.jsonl": os.path.join(directory, "events.jsonl"),
        }
        with open(paths["metrics.prom"], "w", encoding="utf-8") as handle:
            handle.write(self.registry.to_prometheus())
        with open(paths["metrics.json"], "w", encoding="utf-8") as handle:
            json.dump(self.registry.snapshot(), handle, indent=2, sort_keys=True)
        self.events.to_jsonl(paths["events.jsonl"])
        return paths


#: The process-wide singleton every instrumented call site imports.
TELEMETRY = Telemetry()

if os.environ.get("REPRO_TELEMETRY", "").strip() not in ("", "0"):
    TELEMETRY.enable(os.environ.get("REPRO_TELEMETRY_EVENTS") or None)
