"""SEA concepts generator (Street & Kim, 2001).

Three numeric features drawn uniformly from ``[0, 10]``; only the first two
are relevant.  The label is positive when ``f1 + f2 <= θ`` where the
threshold ``θ`` depends on the active concept.  Abrupt concept drift is
obtained by switching between the four classic thresholds (8, 9, 7, 9.5) at
fixed stream positions -- the paper places drifts at 20%, 40%, 60% and 80% of
a 1,000,000-sample stream and adds 10% label noise.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import Stream
from repro.utils.validation import check_in_range, check_random_state

_SEA_THRESHOLDS = (8.0, 9.0, 7.0, 9.5)


class SEAGenerator(Stream):
    """SEA concepts stream with abrupt drift.

    Parameters
    ----------
    n_samples:
        Stream length.
    noise:
        Probability of flipping each label ("perturbation" in the paper).
    drift_positions:
        Fractions of the stream at which the active concept switches to the
        next threshold.  The default matches the paper's schedule.
    seed:
        Random seed.
    """

    def __init__(
        self,
        n_samples: int = 1_000_000,
        noise: float = 0.1,
        drift_positions: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8),
        seed: int | None = None,
    ) -> None:
        super().__init__(n_samples=n_samples, n_features=3, n_classes=2)
        check_in_range(noise, "noise", 0.0, 1.0)
        for position in drift_positions:
            check_in_range(position, "drift_positions", 0.0, 1.0)
        self.noise = float(noise)
        self.drift_positions = tuple(sorted(drift_positions))
        self.seed = seed
        self._rng = check_random_state(seed)

    def restart(self) -> "SEAGenerator":
        super().restart()
        self._rng = check_random_state(self.seed)
        return self

    def concept_at(self, index: int) -> int:
        """Index of the active concept (threshold) at stream position ``index``."""
        fraction = index / self.n_samples
        concept = 0
        for position in self.drift_positions:
            if fraction >= position:
                concept += 1
        return concept % len(_SEA_THRESHOLDS)

    def threshold_at(self, index: int) -> float:
        return _SEA_THRESHOLDS[self.concept_at(index)]

    def _generate(self, start: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        X = self._rng.uniform(0.0, 10.0, size=(count, 3))
        thresholds = np.array(
            [self.threshold_at(start + offset) for offset in range(count)]
        )
        y = (X[:, 0] + X[:, 1] <= thresholds).astype(int)
        if self.noise > 0:
            flip = self._rng.random(count) < self.noise
            y = np.where(flip, 1 - y, y)
        return X, y
