"""PUR -- kernel purity certification for the backend seam.

ROADMAP item 3 (compiled/multi-backend kernels) is only admissible for
functions that are provably free of hidden state mutation: a kernel that
scribbles on ``self``, a global, or a caller's array cannot be swapped
for a compiled implementation (or replayed for the bit-identical pinning
of PRs 3-5) without changing behaviour.  This pass certifies two kernel
families using the interprocedural dataflow facts:

* **stream kernels** -- ``_generate`` / ``_generate_block`` on concrete
  ``SeededStream`` subclasses.  Allowed self-state is exactly the
  ``_repro_transient`` declaration (replay caches); everything else must
  stay untouched.  Arrays obtained from a wrapped stream
  (``peek_rows``/``_source``/``_block``) are *borrowed* -- mutating one
  without an intervening ``.copy()`` corrupts the upstream cache.
* **vectorized kernels** -- methods that branch on a ``vectorized`` flag
  (the PR 4-5 parity contract).  They may update their own model state
  (that is what training is), but must not mutate globals or caller
  arrays.

``PUR001`` flags direct impurity in the kernel body; ``PUR002`` flags
impurity reached through a callee.  The certified survivors are pinned in
``kernel_manifest.json`` (``--regen-manifest``), the admission list for
the backend seam.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.core import Checker, Finding, Project, Rule
from repro.analysis.checkers.persistence import _ancestors, is_abstract
from repro.analysis.checkers.vectorized import _class_sets_vectorized

if TYPE_CHECKING:  # deferred: dataflow imports callgraph, which imports
    from repro.analysis.dataflow import DataflowEngine  # this package

#: The stream base classes kernels hang off: ``Stream`` is the root
#: contract (``ArrayStream``/``ScenarioPipeline`` subclass it directly),
#: ``SeededStream`` covers fixture trees that fake only the seeded base.
#: Matching is structural (by name anywhere in the ancestry) so fixture
#: trees can exercise the pass without the real package.
STREAM_BASES = frozenset({"Stream", "SeededStream"})

#: Names of the stream kernel entry points.
STREAM_KERNELS = ("_generate", "_generate_block")

#: Data-contract array parameters.  Vectorized kernels may mutate their
#: *model* state (tree nodes passed between helpers included) -- training
#: is mutation -- but never the caller's data arrays.
DATA_PARAMS = frozenset({"X", "y", "sample_weight", "X_block", "y_block"})


def _short(qualname: str) -> str:
    return ".".join(qualname.rsplit(".", 2)[-2:])


def _is_stream_class(cls: str, engine: DataflowEngine) -> bool:
    if cls.rsplit(".", 1)[-1] in STREAM_BASES:
        return True
    return any(
        base.rsplit(".", 1)[-1] in STREAM_BASES
        for base in _ancestors(cls, engine.graph.class_graph)
    )


def _reads_vectorized_flag(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and child.attr == "vectorized"
            and isinstance(child.ctx, ast.Load)
        ):
            return True
    return False


def discover_stream_kernels(engine: DataflowEngine) -> tuple[str, ...]:
    """Defining qualnames of every live ``_generate``/``_generate_block``.

    "Live" means reachable from a concrete (instantiable) stream class;
    a kernel inherited by several concrete subclasses appears once, under
    the class that defines it.
    """
    kernels: set[str] = set()
    for cls in sorted(engine.graph.class_graph):
        if not _is_stream_class(cls, engine):
            continue
        if is_abstract(cls, engine.graph.class_graph):
            continue
        table = engine.graph.method_table.get(cls, {})
        for name in STREAM_KERNELS:
            defining = table.get(name)
            if defining is not None and defining in engine.graph.functions:
                kernels.add(defining)
    return tuple(sorted(kernels))


def discover_vectorized_kernels(engine: DataflowEngine) -> tuple[str, ...]:
    """Methods of flag-owning classes that branch on ``self.vectorized``."""
    kernels: set[str] = set()
    for cls in sorted(engine.graph.class_graph):
        info = engine.graph.class_graph[cls]
        if not _class_sets_vectorized(info.node):
            continue
        for qualname, fn in engine.graph.functions.items():
            if fn.cls != cls or fn.name == "__init__":
                continue
            if _reads_vectorized_flag(fn.node):
                kernels.add(qualname)
    return tuple(sorted(kernels))


def kernel_findings(
    engine: DataflowEngine, qualname: str, *, allow_self_writes: bool
) -> list[Finding]:
    """PUR001/PUR002 findings for one kernel function."""
    from repro.analysis.dataflow import transient_of

    fn = engine.graph.functions[qualname]
    summary = engine.summaries[qualname]
    allowed = (
        transient_of(fn.cls, engine.graph) if fn.cls is not None else frozenset()
    )
    findings: list[Finding] = []

    def emit(rule: str, line: int, col: int, message: str) -> None:
        findings.append(
            Finding(
                path=fn.module.rel,
                line=line,
                col=col,
                rule=rule,
                message=message,
            )
        )

    if not allow_self_writes:
        for access in summary.accesses:
            if access.kind != "write" or access.attr in allowed:
                continue
            emit(
                "PUR001",
                access.line,
                access.col,
                f"kernel {_short(qualname)} mutates non-transient self "
                f"state '{access.attr}' (declare it in _repro_transient "
                "or hoist the mutation out of the kernel)",
            )
    for name in sorted(summary.writes_globals):
        emit(
            "PUR001",
            fn.node.lineno,
            fn.node.col_offset,
            f"kernel {_short(qualname)} mutates module-level state "
            f"'{name}'",
        )
    for name in sorted(summary.mutated_params):
        if allow_self_writes and name not in DATA_PARAMS:
            continue  # model-state objects threaded through helpers
        emit(
            "PUR001",
            fn.node.lineno,
            fn.node.col_offset,
            f"kernel {_short(qualname)} mutates caller argument '{name}' "
            "in place",
        )
    for mutation in summary.borrow_mutations:
        emit(
            "PUR001",
            mutation.line,
            mutation.col,
            f"kernel {_short(qualname)} mutates borrowed array "
            f"'{mutation.name}' without copying it first",
        )
    # Transitive impurity: a call whose closure adds effects the direct
    # scan above did not already report.
    for call in summary.calls:
        culprits: set[str] = set()
        for target in call.site.targets:
            facts = engine.facts.get(target)
            if facts is None:
                continue
            if not allow_self_writes and call.site.on_self:
                # ``impure_writes_self`` is already filtered against each
                # *writer's own* transient declaration, so a subclass
                # cache write deep in a dispatch chain is not impurity.
                extra = facts.impure_writes_self - allowed - summary.writes_self
                if extra:
                    culprits.add(
                        f"self state {', '.join(sorted(extra))!s} via "
                        f"{_short(target)}"
                    )
            extra_globals = facts.writes_globals - summary.writes_globals
            if extra_globals:
                culprits.add(
                    f"module state {', '.join(sorted(extra_globals))!s} "
                    f"via {_short(target)}"
                )
            for caller_name, callee_param in engine.map_args(call, target):
                if callee_param not in facts.mutated_params:
                    continue
                for binding in call.args:
                    if binding.name != caller_name:
                        continue
                    if (
                        binding.is_param
                        and caller_name not in summary.mutated_params
                        and not (
                            allow_self_writes and caller_name not in DATA_PARAMS
                        )
                    ):
                        culprits.add(
                            f"caller argument '{caller_name}' via "
                            f"{_short(target)}"
                        )
                    if binding.is_borrowed:
                        culprits.add(
                            f"borrowed array '{caller_name}' via "
                            f"{_short(target)}"
                        )
        for culprit in sorted(culprits):
            emit(
                "PUR002",
                call.line,
                call.col,
                f"kernel {_short(qualname)} transitively mutates "
                f"{culprit}",
            )
    findings.sort(key=lambda f: (f.line, f.col, f.rule, f.message))
    return findings


def certified_kernels(
    engine: DataflowEngine,
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """(stream kernels, vectorized kernels) with zero PUR findings."""
    streams = tuple(
        qualname
        for qualname in discover_stream_kernels(engine)
        if not kernel_findings(engine, qualname, allow_self_writes=False)
    )
    vectorized = tuple(
        qualname
        for qualname in discover_vectorized_kernels(engine)
        if not kernel_findings(engine, qualname, allow_self_writes=True)
    )
    return streams, vectorized


class KernelPurityChecker(Checker):
    name = "kernel-purity"
    rules = (
        Rule(
            "PUR001",
            "kernel mutates non-transient self state, globals, or caller arrays",
            "the backend seam (ROADMAP item 3) and the bit-identical "
            "replay pinning both require kernels to be pure modulo "
            "_repro_transient caches",
        ),
        Rule(
            "PUR002",
            "kernel reaches impure state mutation through a callee",
            "purity is a whole-call-tree property; a pure-looking kernel "
            "delegating to an impure helper is still inadmissible",
        ),
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.dataflow import shared_engine

        engine = shared_engine(project)
        for qualname in discover_stream_kernels(engine):
            yield from kernel_findings(engine, qualname, allow_self_writes=False)
        for qualname in discover_vectorized_kernels(engine):
            yield from kernel_findings(engine, qualname, allow_self_writes=True)
