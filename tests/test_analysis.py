"""Tests for repro-lint (:mod:`repro.analysis`).

Each rule gets at least one fixture-proven true positive and one negative
(the sanctioned idiom), plus suppression handling, baseline round-trips,
CLI exit codes, a determinism property test, and the meta-test that the
live tree itself is clean modulo the checked-in baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    BaselineEntry,
    Finding,
    all_rules,
    apply_baseline,
    default_checkers,
    discover,
    load_baseline,
    run,
    write_baseline,
)
from repro.analysis.__main__ import main
from repro.analysis.core import Project, suppressed_rules_by_line


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialise ``{'repro/layer/mod.py': source}`` under a tmp root."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return tmp_path


def findings_for(tmp_path: Path, files: dict[str, str]) -> list[Finding]:
    return run(discover(make_tree(tmp_path, files)))


def rules_of(findings: list[Finding]) -> set[str]:
    return {finding.rule for finding in findings}


# --------------------------------------------------------------------- rng


class TestRngDiscipline:
    def test_global_numpy_draw_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/bad.py": (
                    "import numpy as np\n"
                    "def jitter(n):\n"
                    "    return np.random.rand(n)\n"
                )
            },
        )
        assert rules_of(findings) == {"RNG001"}
        assert findings[0].path == "repro/trees/bad.py"
        assert findings[0].line == 3

    def test_default_rng_outside_factory_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/core/bad.py": (
                    "import numpy as np\n"
                    "def make(seed):\n"
                    "    return np.random.default_rng(seed)\n"
                )
            },
        )
        assert rules_of(findings) == {"RNG002"}

    def test_default_rng_inside_blessed_factory_ok(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/utils/good.py": (
                    "import numpy as np\n"
                    "def check_random_state(seed):\n"
                    "    return np.random.default_rng(seed)\n"
                )
            },
        )
        assert findings == []

    def test_seedless_seedsequence_flagged_seeded_ok(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/streams/bad.py": (
                    "import numpy as np\n"
                    "ENTROPY = np.random.SeedSequence()\n"
                    "SEEDED = np.random.SeedSequence(42)\n"
                )
            },
        )
        assert rules_of(findings) == {"RNG002"}
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_stdlib_random_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {"repro/drift/bad.py": "import random\nx = random.random()\n"},
        )
        assert rules_of(findings) == {"RNG003"}
        assert len(findings) == 2  # the import and the call

    def test_serving_layer_exempt(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {"repro/serving/ok.py": "import random\nx = random.random()\n"},
        )
        assert findings == []


# --------------------------------------------------------------- wall clock


class TestWallClockDiscipline:
    def test_wallclock_read_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/evaluation/bad.py": (
                    "import time\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                )
            },
        )
        assert rules_of(findings) == {"CLK001"}

    def test_wallclock_in_serving_ok(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {"repro/serving/ok.py": "import time\nnow = time.time()\n"},
        )
        assert findings == []

    def test_unguarded_monotonic_timer_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/bad.py": (
                    "from time import perf_counter\n"
                    "def fit():\n"
                    "    started = perf_counter()\n"
                )
            },
        )
        assert rules_of(findings) == {"CLK002"}

    def test_guarded_monotonic_timer_ok(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/good.py": (
                    "from time import perf_counter\n"
                    "from repro.telemetry import TELEMETRY\n"
                    "def fit():\n"
                    "    if TELEMETRY.enabled:\n"
                    "        started = perf_counter()\n"
                )
            },
        )
        assert findings == []

    def test_evaluation_monotonic_timer_exempt(self, tmp_path):
        # Measuring training time per batch is the evaluation layer's job.
        findings = findings_for(
            tmp_path,
            {
                "repro/evaluation/ok.py": (
                    "from time import perf_counter\n"
                    "def run():\n"
                    "    return perf_counter()\n"
                )
            },
        )
        assert findings == []


# ---------------------------------------------------------- telemetry guard


class TestTelemetryGuard:
    def test_unguarded_state_access_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/core/bad.py": (
                    "from repro.telemetry import TELEMETRY\n"
                    "def record():\n"
                    "    TELEMETRY.counter('repro.core.x_total').inc()\n"
                )
            },
        )
        assert "TEL001" in rules_of(findings)

    def test_guarded_state_access_ok(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/core/good.py": (
                    "from repro.telemetry import TELEMETRY\n"
                    "def record():\n"
                    "    if TELEMETRY.enabled:\n"
                    "        TELEMETRY.emit('tree.split', node=1, feature=0,\n"
                    "                       threshold=0.5, depth=1)\n"
                )
            },
        )
        assert findings == []

    def test_alias_guard_recognised(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/core/good.py": (
                    "from repro.telemetry import TELEMETRY\n"
                    "def record():\n"
                    "    telemetry_on = TELEMETRY.enabled\n"
                    "    if telemetry_on:\n"
                    "        TELEMETRY.emit('tree.split', node=1, feature=0,\n"
                    "                       threshold=0.5, depth=1)\n"
                )
            },
        )
        assert findings == []

    def test_early_exit_guard_recognised(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/core/good.py": (
                    "from repro.telemetry import TELEMETRY\n"
                    "def record():\n"
                    "    if not TELEMETRY.enabled:\n"
                    "        return\n"
                    "    TELEMETRY.emit('tree.split', node=1, feature=0,\n"
                    "                   threshold=0.5, depth=1)\n"
                )
            },
        )
        assert findings == []

    def test_helper_body_exempt_but_call_site_must_guard(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/mixed.py": (
                    "from repro.telemetry import TELEMETRY\n"
                    "class Tree:\n"
                    "    def _telemetry_split(self):\n"
                    "        TELEMETRY.counter('repro.tree.splits_total').inc()\n"
                    "    def fit_guarded(self):\n"
                    "        if TELEMETRY.enabled:\n"
                    "            self._telemetry_split()\n"
                    "    def fit_unguarded(self):\n"
                    "        self._telemetry_split()\n"
                )
            },
        )
        assert rules_of(findings) == {"TEL002"}
        assert len(findings) == 1
        assert findings[0].line == 9

    def test_safe_attrs_need_no_guard(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/core/good.py": (
                    "from repro.telemetry import TELEMETRY\n"
                    "def status():\n"
                    "    with TELEMETRY.span('evaluation.prequential'):\n"
                    "        return TELEMETRY.enabled\n"
                )
            },
        )
        assert findings == []


# -------------------------------------------------------------- persistence

_MIXIN = "repro/persistence/mixin.py"
_MIXIN_SRC = "class PersistableStateMixin:\n    pass\n"
_REGISTRY = "repro/persistence/registry.py"


def _registry_src(*class_names: str) -> str:
    imports = "".join(
        f"    from repro.models.zoo import {name}\n" for name in class_names
    )
    uses = "".join(f"    register({name})\n" for name in class_names)
    return (
        "def register(cls):\n    return cls\n"
        "def ensure_default_registrations():\n"
        + (imports + uses if class_names else "    pass\n")
    )


class TestPersistenceCompleteness:
    def test_unregistered_persistable_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                _MIXIN: _MIXIN_SRC,
                _REGISTRY: _registry_src(),
                "repro/models/zoo.py": (
                    "from repro.persistence.mixin import PersistableStateMixin\n"
                    "class Orphan(PersistableStateMixin):\n"
                    "    pass\n"
                ),
            },
        )
        assert rules_of(findings) == {"PER001"}
        assert "Orphan" in findings[0].message

    def test_registered_persistable_ok(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                _MIXIN: _MIXIN_SRC,
                _REGISTRY: _registry_src("Kept"),
                "repro/models/zoo.py": (
                    "from repro.persistence.mixin import PersistableStateMixin\n"
                    "class Kept(PersistableStateMixin):\n"
                    "    pass\n"
                ),
            },
        )
        assert findings == []

    def test_abstract_persistable_ok(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                _MIXIN: _MIXIN_SRC,
                _REGISTRY: _registry_src("Leaf"),
                "repro/models/zoo.py": (
                    "from abc import abstractmethod\n"
                    "from repro.persistence.mixin import PersistableStateMixin\n"
                    "class Base(PersistableStateMixin):\n"
                    "    @abstractmethod\n"
                    "    def fit(self):\n"
                    "        ...\n"
                    "class Leaf(Base):\n"
                    "    def fit(self):\n"
                    "        return self\n"
                ),
            },
        )
        assert findings == []

    def test_reexport_resolution(self, tmp_path):
        # Registry imports through the package __init__; the checker must
        # resolve the re-export back to the defining module.
        findings = findings_for(
            tmp_path,
            {
                _MIXIN: _MIXIN_SRC,
                _REGISTRY: (
                    "def register(cls):\n    return cls\n"
                    "def ensure_default_registrations():\n"
                    "    from repro.models import Kept\n"
                    "    register(Kept)\n"
                ),
                "repro/models/__init__.py": "from repro.models.zoo import Kept\n",
                "repro/models/zoo.py": (
                    "from repro.persistence.mixin import PersistableStateMixin\n"
                    "class Kept(PersistableStateMixin):\n"
                    "    pass\n"
                ),
            },
        )
        assert findings == []

    def test_transient_typo_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/models/zoo.py": (
                    "class Cachey:\n"
                    "    _repro_transient = ('_cahce',)\n"
                    "    def __init__(self):\n"
                    "        self._cache = None\n"
                    "    def _init_transient(self):\n"
                    "        self._cache = None\n"
                ),
            },
        )
        assert rules_of(findings) == {"PER002"}
        assert "'_cahce'" in findings[0].message

    def test_transient_without_init_hook_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/models/zoo.py": (
                    "class Cachey:\n"
                    "    _repro_transient = ('_cache',)\n"
                    "    def __init__(self):\n"
                    "        self._cache = None\n"
                ),
            },
        )
        assert rules_of(findings) == {"PER003"}

    def test_transient_contract_satisfied_ok(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/models/zoo.py": (
                    "class Cachey:\n"
                    "    _repro_transient = ('_cache',)\n"
                    "    def __init__(self):\n"
                    "        self._cache = None\n"
                    "    def _init_transient(self):\n"
                    "        self._cache = None\n"
                ),
            },
        )
        assert findings == []

    def test_inherited_init_transient_ok(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/models/zoo.py": (
                    "class Base:\n"
                    "    def __init__(self):\n"
                    "        self._cache = None\n"
                    "    def _init_transient(self):\n"
                    "        self._cache = None\n"
                    "class Child(Base):\n"
                    "    _repro_transient = ('_cache',)\n"
                ),
            },
        )
        assert findings == []


# ---------------------------------------------------------------- vectorized


class TestVectorizedParity:
    def test_flag_set_but_never_read_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/bad.py": (
                    "class Model:\n"
                    "    def __init__(self, vectorized=True):\n"
                    "        self.vectorized = vectorized\n"
                    "    def fit(self, X):\n"
                    "        return self._fit_batch(X)\n"
                ),
            },
        )
        assert rules_of(findings) == {"VEC001"}

    def test_branching_on_flag_ok(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/good.py": (
                    "class Model:\n"
                    "    def __init__(self, vectorized=True):\n"
                    "        self.vectorized = vectorized\n"
                    "    def fit(self, X):\n"
                    "        if self.vectorized:\n"
                    "            return self._fit_batch(X)\n"
                    "        return self._fit_rows(X)\n"
                ),
            },
        )
        assert findings == []

    def test_forwarding_flag_ok(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/good.py": (
                    "class Model:\n"
                    "    def __init__(self, node_cls, vectorized=True):\n"
                    "        self.vectorized = vectorized\n"
                    "        self.root = node_cls(vectorized=self.vectorized)\n"
                ),
            },
        )
        assert findings == []


# -------------------------------------------------------------- metric names


class TestMetricNaming:
    def test_malformed_metric_name_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/bad.py": (
                    "from repro.telemetry import TELEMETRY\n"
                    "def record():\n"
                    "    if TELEMETRY.enabled:\n"
                    "        TELEMETRY.counter('Splits.Total').inc()\n"
                ),
            },
        )
        assert rules_of(findings) == {"MET001"}

    def test_wrong_shape_repro_name_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/bad.py": (
                    "from repro.telemetry import TELEMETRY\n"
                    "def record():\n"
                    "    if TELEMETRY.enabled:\n"
                    "        TELEMETRY.counter('repro.Trees.splits').inc()\n"
                ),
            },
        )
        assert rules_of(findings) == {"MET001"}

    def test_unknown_metric_name_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/bad.py": (
                    "from repro.telemetry import TELEMETRY\n"
                    "def record():\n"
                    "    if TELEMETRY.enabled:\n"
                    "        TELEMETRY.counter('repro.tree.not_in_inventory').inc()\n"
                ),
            },
        )
        assert rules_of(findings) == {"MET002"}

    def test_module_constant_checked(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/bad.py": "SPLITS = 'repro.tree.not_in_inventory'\n",
            },
        )
        assert rules_of(findings) == {"MET002"}
        assert findings[0].line == 1

    def test_inventory_metric_ok(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/good.py": (
                    "from repro.telemetry import TELEMETRY\n"
                    "def record():\n"
                    "    if TELEMETRY.enabled:\n"
                    "        TELEMETRY.counter('repro.tree.splits_total').inc()\n"
                ),
            },
        )
        assert findings == []

    def test_unknown_span_name_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/core/bad.py": (
                    "from repro.telemetry import TELEMETRY\n"
                    "def work():\n"
                    "    with TELEMETRY.span('core.bogus_span'):\n"
                    "        pass\n"
                ),
            },
        )
        assert rules_of(findings) == {"MET003"}

    def test_unknown_event_kind_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/core/bad.py": (
                    "from repro.telemetry import TELEMETRY\n"
                    "def work():\n"
                    "    if TELEMETRY.enabled:\n"
                    "        TELEMETRY.emit('tree.splitted', node=1)\n"
                ),
            },
        )
        assert rules_of(findings) == {"MET004"}

    def test_event_kind_via_module_constant_resolved(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/core/bad.py": (
                    "from repro.telemetry import TELEMETRY\n"
                    "KIND = 'tree.splitted'\n"
                    "def work():\n"
                    "    if TELEMETRY.enabled:\n"
                    "        TELEMETRY.emit(KIND, node=1)\n"
                ),
            },
        )
        assert rules_of(findings) == {"MET004"}


# -------------------------------------------------------------- suppressions


class TestSuppressions:
    def test_same_line_suppression(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/ok.py": (
                    "import numpy as np\n"
                    "x = np.random.rand(3)  # repro-lint: disable=RNG001\n"
                ),
            },
        )
        assert findings == []

    def test_standalone_comment_suppresses_next_line(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/ok.py": (
                    "import numpy as np\n"
                    "# repro-lint: disable=RNG001\n"
                    "x = np.random.rand(3)\n"
                ),
            },
        )
        assert findings == []

    def test_suppression_is_rule_specific(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/bad.py": (
                    "import numpy as np\n"
                    "x = np.random.rand(3)  # repro-lint: disable=RNG002\n"
                ),
            },
        )
        assert rules_of(findings) == {"RNG001"}

    def test_disable_all(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "repro/trees/ok.py": (
                    "import numpy as np\n"
                    "x = np.random.rand(3)  # repro-lint: disable=all\n"
                ),
            },
        )
        assert findings == []

    def test_marker_inside_prose_comment(self):
        suppressions = suppressed_rules_by_line(
            "x = 1  # deliberate one-off. repro-lint: disable=RNG002\n"
        )
        assert suppressions == {1: frozenset({"RNG002"})}


# ------------------------------------------------------------------ baseline


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = findings_for(
            tmp_path / "tree",
            {
                "repro/trees/bad.py": (
                    "import numpy as np\n"
                    "x = np.random.rand(3)\n"
                ),
            },
        )
        assert len(findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)
        loaded = load_baseline(baseline_path)
        assert len(loaded) == 1
        assert loaded[0].justification == "TODO: justify this accepted finding"
        fresh, stale = apply_baseline(findings, loaded)
        assert fresh == [] and stale == ()

    def test_justification_carried_over(self, tmp_path):
        finding = Finding("repro/a.py", 3, 0, "RNG001", "msg")
        path = tmp_path / "baseline.json"
        previous = (BaselineEntry("repro/a.py", "RNG001", "msg", "because"),)
        write_baseline([finding], path, previous=previous)
        assert load_baseline(path)[0].justification == "because"

    def test_line_moves_do_not_invalidate(self):
        baseline = (BaselineEntry("repro/a.py", "RNG001", "msg"),)
        moved = [Finding("repro/a.py", 99, 4, "RNG001", "msg")]
        fresh, stale = apply_baseline(moved, baseline)
        assert fresh == [] and stale == ()

    def test_multiset_matching(self):
        baseline = (BaselineEntry("repro/a.py", "RNG001", "msg"),)
        twice = [
            Finding("repro/a.py", 1, 0, "RNG001", "msg"),
            Finding("repro/a.py", 2, 0, "RNG001", "msg"),
        ]
        fresh, stale = apply_baseline(twice, baseline)
        assert len(fresh) == 1 and stale == ()

    def test_stale_entries_reported(self):
        baseline = (BaselineEntry("repro/gone.py", "RNG001", "old"),)
        fresh, stale = apply_baseline([], baseline)
        assert fresh == [] and len(stale) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == ()


# ----------------------------------------------------------------------- CLI


class TestCli:
    def test_seeded_violation_fails(self, tmp_path, capsys):
        make_tree(
            tmp_path,
            {
                "repro/trees/bad.py": (
                    "import numpy as np\n"
                    "x = np.random.rand(3)\n"
                ),
            },
        )
        rc = main(["--root", str(tmp_path), "--baseline", str(tmp_path / "b.json")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RNG001" in out and "repro/trees/bad.py:2" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        make_tree(tmp_path, {"repro/trees/ok.py": "x = 1\n"})
        rc = main(["--root", str(tmp_path), "--baseline", str(tmp_path / "b.json")])
        assert rc == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        make_tree(
            tmp_path,
            {
                "repro/trees/bad.py": (
                    "import numpy as np\n"
                    "x = np.random.rand(3)\n"
                ),
            },
        )
        baseline = tmp_path / "b.json"
        args = ["--root", str(tmp_path), "--baseline", str(baseline)]
        assert main(args + ["--update-baseline"]) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        make_tree(
            tmp_path,
            {
                "repro/trees/bad.py": (
                    "import numpy as np\n"
                    "x = np.random.rand(3)\n"
                ),
            },
        )
        rc = main(
            ["--root", str(tmp_path), "--baseline", str(tmp_path / "b.json"),
             "--format", "json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert document["findings"][0]["rule"] == "RNG001"
        assert document["baselined"] == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out


# ------------------------------------------------------------------ rule IDs


def test_rule_ids_unique_and_stable():
    rules = all_rules()
    ids = [rule.id for rule in rules]
    assert len(ids) == len(set(ids))
    assert ids == sorted(ids)
    for checker in default_checkers():
        assert checker.name
        assert checker.rules


# ---------------------------------------------------------------- meta-test


def test_live_tree_clean_modulo_baseline():
    """The shipped source tree has no findings beyond the checked-in baseline."""
    project = discover()
    baseline_path = project.root.parent / "analysis_baseline.json"
    fresh, stale = apply_baseline(run(project), load_baseline(baseline_path))
    assert fresh == [], "\n".join(f.render() for f in fresh)
    assert stale == (), "stale baseline entries: prune with --update-baseline"


def test_live_inventory_is_current():
    """Checked-in inventory matches what --regen-inventory would write."""
    from repro.analysis import inventory
    from repro.analysis.inventory_gen import collect_inventory

    metrics, spans, events = collect_inventory(discover())
    assert metrics == inventory.METRIC_NAMES
    assert spans == inventory.SPAN_NAMES
    assert events == inventory.EVENT_KINDS


# -------------------------------------------------------------- determinism

_DET_FILES = {
    "repro/trees/one.py": (
        "import numpy as np\n"
        "x = np.random.rand(3)\n"
        "from time import perf_counter\n"
        "def f():\n"
        "    return perf_counter()\n"
    ),
    "repro/core/two.py": (
        "from repro.telemetry import TELEMETRY\n"
        "def g():\n"
        "    TELEMETRY.counter('repro.core.bogus_total').inc()\n"
    ),
    "repro/models/zoo.py": (
        "class Cachey:\n"
        "    _repro_transient = ('_typo',)\n"
        "    def __init__(self):\n"
        "        self._cache = None\n"
    ),
    # Interprocedural content: LCK001 fires only after the fixpoint
    # propagates the helper's unguarded write, and PUR002 only after the
    # kernel's impurity is discovered through a callee -- so the shuffle
    # test below also pins the dataflow engine's order-independence.
    "repro/serving/hub.py": (
        "import threading\n"
        "class Hub:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._state = {}\n"
        "    def write(self, key, value):\n"
        "        with self._lock:\n"
        "            self._state[key] = value\n"
        "    def peek(self, key):\n"
        "        return self._state.get(key)\n"
    ),
    "repro/streams/leaky.py": (
        "class SeededStream:\n"
        "    def _generate(self, start, count):\n"
        "        raise NotImplementedError\n"
        "class Leaky(SeededStream):\n"
        "    def __init__(self):\n"
        "        self._hits = 0\n"
        "    def _bump(self):\n"
        "        self._hits += 1\n"
        "    def _generate(self, start, count):\n"
        "        self._bump()\n"
        "        return None\n"
    ),
}


def test_two_runs_identical(tmp_path):
    project = discover(make_tree(tmp_path, _DET_FILES))
    first = run(project)
    second = run(project)
    assert first == second
    assert len(first) >= 4


@settings(max_examples=25, deadline=None)
@given(order=st.permutations(list(range(len(_DET_FILES)))))
def test_findings_independent_of_module_order(tmp_path_factory, order):
    """Shuffling module discovery order never changes the sorted output."""
    tmp_path = tmp_path_factory.mktemp("det")
    project = discover(make_tree(tmp_path, _DET_FILES))
    shuffled = Project(
        root=project.root,
        modules=tuple(project.modules[index] for index in order),
    )
    assert run(shuffled) == run(project)


def test_cli_output_byte_identical(tmp_path, capsys):
    make_tree(tmp_path, _DET_FILES)
    args = ["--root", str(tmp_path), "--baseline", str(tmp_path / "b.json")]
    main(args)
    first = capsys.readouterr().out
    main(args)
    assert capsys.readouterr().out == first
