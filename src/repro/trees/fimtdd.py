"""FIMT-DD adapted to streaming classification (Ikonomovska, Gama & Džeroski, 2011).

FIMT-DD is an incremental model tree for regression: it selects splits by
standard-deviation reduction (SDR) of the target with a Hoeffding-bound ratio
test, trains linear models in its leaves, and relies on a Page-Hinkley test
at the inner nodes to prune branches after concept drift.

There is no public Python classification version, so -- exactly like the
paper's authors -- we re-implement the classifier from the description in the
original publication:

* the class label (its integer index) is treated as the numeric target of the
  SDR criterion,
* the leaves hold logit / multinomial-logit models trained by SGD with a
  learning rate of 0.01,
* the Hoeffding ratio test uses a significance threshold of 0.01 and a tie
  threshold of 0.05,
* drift adaptation follows the second strategy of the original paper: every
  inner node runs a Page-Hinkley test on the prediction error and the branch
  is deleted (replaced by a fresh leaf) when the test raises an alert.
"""

from __future__ import annotations

import numpy as np

from repro.base import ComplexityReport, StreamClassifier
from repro.drift.page_hinkley import PageHinkley
from repro.linear.glm import IncrementalGLM
from repro.telemetry import TREE_PRUNE, TREE_SPLIT, TELEMETRY
from repro.trees.base import tree_depth
from repro.trees.criteria import VarianceReductionCriterion
from repro.trees.hoeffding import hoeffding_bound
from repro.trees.observers import LeafObservers, SplitSuggestion
from repro.utils.validation import check_in_range, check_positive, check_random_state


class FIMTLeaf:
    """Leaf of the FIMT-DD classifier: SDR statistics plus a linear model."""

    __slots__ = (
        "model",
        "n_features",
        "n_split_points",
        "depth",
        "_observers",
        "total_weight",
        "weight_at_last_split_attempt",
    )

    def __init__(
        self,
        model: IncrementalGLM,
        n_features: int,
        n_split_points: int,
        depth: int,
    ) -> None:
        self.model = model
        self.n_features = int(n_features)
        self.n_split_points = int(n_split_points)
        self.depth = int(depth)
        self._observers = LeafObservers(
            n_features=self.n_features, n_split_points=self.n_split_points
        )
        self.total_weight = 0.0
        self.weight_at_last_split_attempt = 0.0

    @property
    def observers(self) -> LeafObservers:
        return self._observers

    @observers.setter
    def observers(self, value) -> None:
        # Pre-refactor payloads stored a dict of per-feature observers.
        if isinstance(value, dict):
            value = LeafObservers.from_legacy(
                n_features=self.n_features,
                n_split_points=self.n_split_points,
                nominal_features=None,
                legacy=value,
            )
        self._observers = value

    def learn_one(self, x: np.ndarray, y_idx: int) -> None:
        self.total_weight += 1.0
        self._observers.update_row(x.tolist(), y_idx)
        self.model.update(x.reshape(1, -1), np.array([y_idx]))

    def best_sdr_suggestions(
        self, criterion: VarianceReductionCriterion, vectorized: bool = True
    ) -> list[SplitSuggestion]:
        return self._observers.best_sdr_suggestions(
            criterion, vectorized=vectorized
        )


class FIMTSplitNode:
    """Inner node of the FIMT-DD classifier with a Page-Hinkley drift monitor."""

    __slots__ = ("feature", "threshold", "depth", "page_hinkley", "children")

    def __init__(
        self,
        feature: int,
        threshold: float,
        depth: int,
        page_hinkley: PageHinkley,
    ) -> None:
        self.feature = int(feature)
        self.threshold = float(threshold)
        self.depth = int(depth)
        self.page_hinkley = page_hinkley
        self.children: list = [None, None]

    def branch_for(self, x: np.ndarray) -> int:
        return 0 if x[self.feature] <= self.threshold else 1

    def branch_mask(self, X: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Boolean left-branch mask of ``X[rows]``."""
        return X[rows, self.feature] <= self.threshold

    def child_for(self, x: np.ndarray):
        return self.children[self.branch_for(x)]


class FIMTDDClassifier(StreamClassifier):
    """FIMT-DD model tree adapted to binary / multiclass classification.

    Parameters
    ----------
    learning_rate:
        SGD learning rate of the linear leaf models (paper default: 0.01).
    split_confidence:
        Significance threshold of the Hoeffding ratio test (paper: 0.01).
    tie_threshold:
        Threshold for breaking ties between similar candidates (paper: 0.05).
    grace_period:
        Observations a leaf accumulates between split attempts.
    n_split_points:
        Candidate thresholds per feature.
    ph_delta / ph_threshold:
        Parameters of the Page-Hinkley tests at the inner nodes.
    max_depth:
        Optional depth limit.
    random_state:
        Seed for the leaf-model initialisation.
    vectorized:
        Whether SDR split sweeps and inference use the batched kernels (the
        default) or the per-threshold / per-row reference loops.  Training
        statistics are identical either way; batched inference scores each
        leaf's rows with one matrix operation, which may differ from the
        per-row loop in the last ulp (BLAS blocking).
    """

    #: Class-level fallback so payloads written before the flag existed load.
    vectorized = True

    def __init__(
        self,
        learning_rate: float = 0.01,
        split_confidence: float = 0.01,
        tie_threshold: float = 0.05,
        grace_period: int = 200,
        n_split_points: int = 10,
        ph_delta: float = 0.005,
        ph_threshold: float = 50.0,
        max_depth: int | None = None,
        random_state: int | None = None,
        vectorized: bool = True,
    ) -> None:
        super().__init__()
        check_positive(learning_rate, "learning_rate")
        check_in_range(split_confidence, "split_confidence", 0.0, 1.0, inclusive=False)
        check_in_range(tie_threshold, "tie_threshold", 0.0, 1.0)
        check_positive(grace_period, "grace_period")
        self.learning_rate = float(learning_rate)
        self.split_confidence = float(split_confidence)
        self.tie_threshold = float(tie_threshold)
        self.grace_period = int(grace_period)
        self.n_split_points = int(n_split_points)
        self.ph_delta = float(ph_delta)
        self.ph_threshold = float(ph_threshold)
        self.max_depth = max_depth
        self.random_state = random_state
        self.vectorized = bool(vectorized)
        self._rng = check_random_state(random_state)
        self._criterion = VarianceReductionCriterion()
        self.root: FIMTLeaf | FIMTSplitNode | None = None
        self.n_split_events = 0
        self.n_pruned_branches = 0

    # -------------------------------------------------------------- fitting
    def reset(self) -> "FIMTDDClassifier":
        self.root = None
        self.classes_ = None
        self.n_features_ = None
        self._rng = check_random_state(self.random_state)
        self.n_split_events = 0
        self.n_pruned_branches = 0
        return self

    def _new_leaf(self, depth: int, model: IncrementalGLM | None = None) -> FIMTLeaf:
        if model is None:
            model = IncrementalGLM(
                n_features=self.n_features_,
                n_classes=max(self.n_classes_, 2),
                learning_rate=self.learning_rate,
                rng=self._rng,
            )
        return FIMTLeaf(
            model=model,
            n_features=self.n_features_,
            n_split_points=self.n_split_points,
            depth=depth,
        )

    def partial_fit(
        self, X: np.ndarray, y: np.ndarray, classes: np.ndarray | None = None
    ) -> "FIMTDDClassifier":
        X, y = self._validate_input(X, y)
        previously_known = self.n_classes_
        self._update_classes(y, classes)
        if self.root is not None and self.n_classes_ > max(previously_known, 2):
            raise ValueError(
                "New class labels appeared after the tree was initialised; "
                "pass the full class set via `classes` on the first call."
            )
        if self.root is None:
            self.root = self._new_leaf(depth=0)
        y_idx = self.class_index(y)
        for row in range(len(X)):
            self._learn_one(X[row], int(y_idx[row]))
        return self

    def _learn_one(self, x: np.ndarray, y_idx: int) -> None:
        # Route to the leaf, remembering the path for the Page-Hinkley updates.
        path: list[tuple[FIMTSplitNode, int]] = []
        node = self.root
        parent: FIMTSplitNode | None = None
        branch = 0
        while isinstance(node, FIMTSplitNode):
            path.append((node, branch))
            parent = node
            branch = node.branch_for(x)
            child = node.children[branch]
            if child is None:
                child = self._new_leaf(depth=node.depth + 1)
                node.children[branch] = child
            node = child
        leaf: FIMTLeaf = node

        # Error signal for drift detection: misclassification indicator of the
        # current leaf model, evaluated before training (test-then-train).
        prediction = int(leaf.model.predict(x.reshape(1, -1))[0])
        error = float(prediction != y_idx)

        leaf.learn_one(x, y_idx)

        # Page-Hinkley at every inner node on the path; prune on alert.
        for ancestor, ancestor_branch in path:
            if ancestor.page_hinkley.update(error):
                self._prune_branch(ancestor, ancestor_branch)
                return

        # Split attempt.
        if self.max_depth is not None and leaf.depth >= self.max_depth:
            return
        if leaf.total_weight - leaf.weight_at_last_split_attempt >= self.grace_period:
            leaf.weight_at_last_split_attempt = leaf.total_weight
            self._attempt_split(leaf, parent, branch)

    def _prune_branch(self, node: FIMTSplitNode, branch_in_parent: int) -> None:
        """Delete the branch rooted at ``node`` (second FIMT-DD drift strategy)."""
        parent, branch = self._find_parent(node)
        replacement = self._new_leaf(depth=node.depth)
        if parent is None:
            self.root = replacement
        else:
            parent.children[branch] = replacement
        self.n_pruned_branches += 1
        if TELEMETRY.enabled:
            TELEMETRY.emit(
                TREE_PRUNE,
                model=type(self).__name__,
                reason="branch",
                depth=int(node.depth),
            )
            TELEMETRY.counter(
                "repro.tree.prunes_total", model=type(self).__name__
            ).inc()

    def _find_parent(
        self, target: FIMTSplitNode
    ) -> tuple[FIMTSplitNode | None, int]:
        if self.root is target:
            return None, 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, FIMTSplitNode):
                for branch, child in enumerate(node.children):
                    if child is target:
                        return node, branch
                    if isinstance(child, FIMTSplitNode):
                        stack.append(child)
        return None, 0

    def _attempt_split(
        self, leaf: FIMTLeaf, parent: FIMTSplitNode | None, branch: int
    ) -> None:
        suggestions = leaf.best_sdr_suggestions(
            self._criterion, vectorized=self.vectorized
        )
        suggestions = [s for s in suggestions if np.isfinite(s.merit) and s.merit > 0]
        if not suggestions:
            return
        suggestions.sort(key=lambda suggestion: suggestion.merit)
        best = suggestions[-1]
        second_merit = suggestions[-2].merit if len(suggestions) > 1 else 0.0
        bound = hoeffding_bound(1.0, self.split_confidence, leaf.total_weight)
        ratio = second_merit / best.merit if best.merit > 0 else 1.0
        if ratio < 1.0 - bound or bound < self.tie_threshold:
            self._split_leaf(leaf, best, parent, branch)

    def _split_leaf(
        self,
        leaf: FIMTLeaf,
        suggestion: SplitSuggestion,
        parent: FIMTSplitNode | None,
        branch: int,
    ) -> None:
        new_split = FIMTSplitNode(
            feature=suggestion.feature,
            threshold=suggestion.threshold,
            depth=leaf.depth,
            page_hinkley=PageHinkley(
                delta=self.ph_delta, threshold=self.ph_threshold
            ),
        )
        # FIMT-DD passes the trained leaf model down to the children.
        for child_idx in range(2):
            new_split.children[child_idx] = self._new_leaf(
                depth=leaf.depth + 1, model=leaf.model.clone(warm_start=True)
            )
        if parent is None:
            self.root = new_split
        else:
            parent.children[branch] = new_split
        self.n_split_events += 1
        if TELEMETRY.enabled:
            TELEMETRY.emit(
                TREE_SPLIT,
                model=type(self).__name__,
                feature=int(suggestion.feature),
                threshold=float(suggestion.threshold),
                depth=int(leaf.depth),
            )
            TELEMETRY.counter(
                "repro.tree.splits_total", model=type(self).__name__
            ).inc()

    # ------------------------------------------------------------ inference
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X, _ = self._validate_input(X)
        if self.root is None or self.classes_ is None:
            raise RuntimeError("predict_proba() called before partial_fit().")
        if not self.vectorized:
            return self._predict_proba_per_row(X)
        proba = np.zeros((len(X), self.n_classes_))
        # One partition per split node, one model evaluation per leaf.
        stack: list[tuple[FIMTLeaf | FIMTSplitNode, np.ndarray]] = [
            (self.root, np.arange(len(X)))
        ]
        while stack:
            node, rows = stack.pop()
            if isinstance(node, FIMTSplitNode):
                mask = node.branch_mask(X, rows)
                for branch, child_rows in ((0, rows[mask]), (1, rows[~mask])):
                    if not len(child_rows):
                        continue
                    child = node.children[branch]
                    if child is None:
                        child = self._new_leaf(depth=node.depth + 1)
                        node.children[branch] = child
                    stack.append((child, child_rows))
                continue
            leaf_proba = node.model.predict_proba(X[rows])
            proba[rows] = leaf_proba[:, : self.n_classes_]
        row_sums = proba.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        return proba / row_sums

    def _predict_proba_per_row(self, X: np.ndarray) -> np.ndarray:
        """Reference inference: one root-to-leaf walk and one model
        evaluation per row.  May differ from the batched path in the last
        ulp (BLAS blocks the batched matmul differently)."""
        proba = np.zeros((len(X), self.n_classes_))
        for row, x in enumerate(X):
            node = self.root
            while isinstance(node, FIMTSplitNode):
                child = node.child_for(x)
                if child is None:
                    child = self._new_leaf(depth=node.depth + 1)
                    node.children[node.branch_for(x)] = child
                node = child
            leaf_proba = node.model.predict_proba(x.reshape(1, -1))[0]
            proba[row] = leaf_proba[: self.n_classes_]
        row_sums = proba.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        return proba / row_sums

    # ------------------------------------------------------- interpretability
    def _nodes(self) -> list:
        if self.root is None:
            return []
        nodes = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            if isinstance(node, FIMTSplitNode):
                stack.extend(child for child in node.children if child is not None)
        return nodes

    def complexity(self) -> ComplexityReport:
        if self.root is None:
            return ComplexityReport(n_splits=0, n_parameters=0)
        nodes = self._nodes()
        n_inner = sum(1 for node in nodes if isinstance(node, FIMTSplitNode))
        n_leaves = sum(1 for node in nodes if isinstance(node, FIMTLeaf))
        n_classes = max(self.n_classes_, 2)
        leaf_splits = 1 if n_classes == 2 else n_classes
        leaf_params = self.n_features_ * (1 if n_classes == 2 else n_classes)
        return ComplexityReport(
            n_splits=n_inner + leaf_splits * n_leaves,
            n_parameters=n_inner + leaf_params * n_leaves,
            n_nodes=n_inner + n_leaves,
            n_leaves=n_leaves,
            depth=tree_depth(self.root) if hasattr(self.root, "children") else 0,
        )

    @property
    def n_nodes(self) -> int:
        return len(self._nodes())

    @property
    def n_leaves(self) -> int:
        return sum(1 for node in self._nodes() if isinstance(node, FIMTLeaf))
