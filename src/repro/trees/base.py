"""Shared node machinery of the Hoeffding-tree family.

The VFDT, HT-Ada and EFDT baselines share the same building blocks: learning
leaves that keep class statistics plus per-feature attribute observers, and
binary split nodes that route observations.  This module provides those
blocks; the concrete trees differ only in *when* they split, re-evaluate or
prune.
"""

from __future__ import annotations

import numpy as np

from repro.linear.naive_bayes import GaussianNaiveBayes
from repro.trees.criteria import SplitCriterion
from repro.trees.observers import (
    GaussianAttributeObserver,
    NominalAttributeObserver,
    SplitSuggestion,
)


def ensure_length(array: np.ndarray, length: int) -> np.ndarray:
    """Zero-pad a 1-D statistics array to ``length`` (class-count growth)."""
    if len(array) >= length:
        return array
    padded = np.zeros(length)
    padded[: len(array)] = array
    return padded


class LeafNode:
    """A learning leaf: class statistics, attribute observers, leaf predictor.

    Parameters
    ----------
    n_classes:
        Current size of the class space.
    n_features:
        Number of input features.
    leaf_prediction:
        ``"mc"`` (majority class), ``"nb"`` (Naive Bayes) or ``"nba"``
        (Naive Bayes adaptive -- picks whichever of MC/NB has been more
        accurate on the data seen at this leaf).
    n_split_points:
        Candidate thresholds per numeric feature.
    nominal_features:
        Indices of features that should be observed nominally.
    depth:
        Depth of the leaf in the tree (root = 0).
    """

    def __init__(
        self,
        n_classes: int,
        n_features: int,
        leaf_prediction: str = "mc",
        n_split_points: int = 10,
        nominal_features: set[int] | None = None,
        depth: int = 0,
        initial_dist: np.ndarray | None = None,
    ) -> None:
        if leaf_prediction not in {"mc", "nb", "nba"}:
            raise ValueError(
                "leaf_prediction must be one of 'mc', 'nb', 'nba', "
                f"got {leaf_prediction!r}."
            )
        self.n_classes = int(n_classes)
        self.n_features = int(n_features)
        self.leaf_prediction = leaf_prediction
        self.n_split_points = int(n_split_points)
        self.nominal_features = nominal_features or set()
        self.depth = int(depth)
        self.class_dist = (
            np.zeros(n_classes)
            if initial_dist is None
            else ensure_length(np.asarray(initial_dist, dtype=float), n_classes)
        )
        self.observers: dict[int, GaussianAttributeObserver | NominalAttributeObserver] = {}
        self.weight_at_last_split_attempt = float(self.class_dist.sum())
        self._naive_bayes: GaussianNaiveBayes | None = None
        self._mc_correct = 0.0
        self._nb_correct = 0.0

    # ------------------------------------------------------------ statistics
    @property
    def total_weight(self) -> float:
        return float(self.class_dist.sum())

    @property
    def is_pure(self) -> bool:
        return np.count_nonzero(self.class_dist) <= 1

    def _observer_for(self, feature: int):
        observer = self.observers.get(feature)
        if observer is None:
            if feature in self.nominal_features:
                observer = NominalAttributeObserver()
            else:
                observer = GaussianAttributeObserver(self.n_split_points)
            self.observers[feature] = observer
        return observer

    def _grow_classes(self, n_classes: int) -> None:
        if n_classes > self.n_classes:
            self.class_dist = ensure_length(self.class_dist, n_classes)
            self.n_classes = n_classes
            self._naive_bayes = None  # re-created lazily with the new size

    # ---------------------------------------------------------------- learn
    def learn_one(self, x: np.ndarray, y_idx: int, n_classes: int, weight: float = 1.0) -> None:
        """Update the leaf with one observation."""
        self._grow_classes(n_classes)
        if self.leaf_prediction == "nba" and self.total_weight > 0:
            # Track which of the two leaf predictors would have been right.
            mc_prediction = int(np.argmax(self.class_dist))
            if mc_prediction == y_idx:
                self._mc_correct += weight
            if self._naive_bayes is not None and self._naive_bayes.total_count > 0:
                nb_prediction = int(self._naive_bayes.predict(x.reshape(1, -1))[0])
                if nb_prediction == y_idx:
                    self._nb_correct += weight
        self.class_dist[y_idx] += weight
        for feature in range(self.n_features):
            self._observer_for(feature).update(x[feature], y_idx, weight)
        if self.leaf_prediction in {"nb", "nba"}:
            if self._naive_bayes is None:
                self._naive_bayes = GaussianNaiveBayes(
                    self.n_features, max(self.n_classes, 2)
                )
            self._naive_bayes.update(x.reshape(1, -1), np.array([y_idx]))

    # -------------------------------------------------------------- predict
    def predict_proba(self, x: np.ndarray, n_classes: int) -> np.ndarray:
        dist = ensure_length(self.class_dist, n_classes)
        total = dist.sum()
        majority = (
            np.full(n_classes, 1.0 / n_classes) if total == 0 else dist / total
        )
        if self.leaf_prediction == "mc" or self._naive_bayes is None:
            return majority
        nb_proba = np.zeros(n_classes)
        raw = self._naive_bayes.predict_proba(x.reshape(1, -1))[0]
        nb_proba[: len(raw)] = raw
        if self.leaf_prediction == "nb":
            return nb_proba
        # Adaptive: use Naive Bayes only if it has been at least as accurate.
        return nb_proba if self._nb_correct >= self._mc_correct else majority

    # ---------------------------------------------------------------- split
    def best_split_suggestions(
        self, criterion: SplitCriterion
    ) -> list[SplitSuggestion]:
        """Best suggestion per feature plus the null (do-not-split) suggestion."""
        suggestions = [
            SplitSuggestion(feature=-1, threshold=0.0, merit=0.0)  # null split
        ]
        for feature, observer in self.observers.items():
            suggestion = observer.best_split_suggestion(
                criterion, self.class_dist, feature
            )
            if suggestion is not None:
                suggestions.append(suggestion)
        return suggestions


class SplitNode:
    """A binary split node: ``x[feature] <= threshold`` goes left."""

    def __init__(
        self,
        feature: int,
        threshold: float,
        is_nominal: bool = False,
        class_dist: np.ndarray | None = None,
        depth: int = 0,
    ) -> None:
        self.feature = int(feature)
        self.threshold = float(threshold)
        self.is_nominal = bool(is_nominal)
        self.class_dist = (
            np.zeros(0) if class_dist is None else np.asarray(class_dist, dtype=float)
        )
        self.depth = int(depth)
        self.children: list = [None, None]

    @property
    def left(self):
        return self.children[0]

    @left.setter
    def left(self, node) -> None:
        self.children[0] = node

    @property
    def right(self):
        return self.children[1]

    @right.setter
    def right(self, node) -> None:
        self.children[1] = node

    def branch_for(self, x: np.ndarray) -> int:
        """Return 0 (left) or 1 (right) for an observation."""
        value = x[self.feature]
        if self.is_nominal:
            return 0 if value == self.threshold else 1
        return 0 if value <= self.threshold else 1

    def child_for(self, x: np.ndarray):
        return self.children[self.branch_for(x)]


def iter_nodes(root) -> list:
    """All nodes of a (possibly mixed) tree in pre-order."""
    if root is None:
        return []
    nodes = [root]
    stack = [root]
    while stack:
        node = stack.pop()
        children = getattr(node, "children", None)
        if children:
            for child in children:
                if child is not None:
                    nodes.append(child)
                    stack.append(child)
        alternate = getattr(node, "alternate_tree", None)
        if alternate is not None:
            nodes.append(alternate)
            stack.append(alternate)
    return nodes


def tree_depth(root) -> int:
    """Maximum depth of the tree rooted at ``root`` (leaf-only tree = 0)."""
    if root is None:
        return 0
    children = getattr(root, "children", None)
    if not children:
        return 0
    child_depths = [tree_depth(child) for child in children if child is not None]
    return 1 + (max(child_depths) if child_depths else 0)
