"""Lexical ``TELEMETRY.enabled`` guard analysis shared by several checkers.

The telemetry convention (PR 6) is that every instrumented call site pays a
single attribute read when telemetry is disabled.  The codebase expresses
"this region only runs when telemetry is on" in a handful of shapes::

    if TELEMETRY.enabled:                      # plain lexical guard
        TELEMETRY.counter(...).inc()

    if drift and TELEMETRY.enabled:            # guard inside an ``and``
        ...

    telemetry_on = TELEMETRY.enabled           # local alias guard
    if telemetry_on:
        ...
    handle = TELEMETRY.histogram(...) if telemetry_on else None

    if not TELEMETRY.enabled:                  # early-exit guard: the rest
        ...                                    # of the block is only
        return ...                             # reached when enabled

    def _telemetry_split(self, ...):           # helper convention: body is
        TELEMETRY.emit(...)                    # exempt, every *call site*
                                               # must itself be guarded

:class:`GuardIndex` walks a module once, applying these rules, and records
which AST nodes sit in an enabled-only region.  Checkers then ask
:meth:`GuardIndex.guarded` for any node of the same tree instance.
"""

from __future__ import annotations

import ast

#: Name of the process-wide singleton every instrumented module imports.
TELEMETRY_NAME = "TELEMETRY"

#: Attributes of ``TELEMETRY`` that are safe to touch without a guard:
#: ``enabled`` is the guard itself, ``span`` returns the shared no-op
#: context manager when disabled, and the lifecycle/export methods are
#: never on a hot path.
SAFE_ATTRS = frozenset({"enabled", "enable", "disable", "reset", "span", "export_run"})

#: Prefix marking a telemetry helper: the body is exempt from the guard
#: rule, every call site of the helper must be guarded instead.
HELPER_PREFIX = "_telemetry_"


def _is_enabled_read(node: ast.expr) -> bool:
    """``TELEMETRY.enabled`` as a bare attribute chain."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "enabled"
        and isinstance(node.value, ast.Name)
        and node.value.id == TELEMETRY_NAME
    )


def _terminates(body: list[ast.stmt]) -> bool:
    """Whether a block always leaves the enclosing suite."""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


class GuardIndex:
    """Set of AST nodes lexically inside a telemetry-enabled-only region."""

    def __init__(self, tree: ast.Module) -> None:
        self._guarded: set[int] = set()
        self._scan_stmts(list(tree.body), False, self._collect_aliases(tree))

    def guarded(self, node: ast.AST) -> bool:
        return id(node) in self._guarded

    # ------------------------------------------------------------- internals
    def _collect_aliases(self, scope: ast.AST) -> frozenset[str]:
        """Local names assigned from ``TELEMETRY.enabled`` in this scope."""
        aliases: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and _is_enabled_read(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return frozenset(aliases)

    def _implies(self, test: ast.expr, aliases: frozenset[str]) -> bool:
        """Whether ``test`` being truthy implies telemetry is enabled."""
        if _is_enabled_read(test):
            return True
        if isinstance(test, ast.Name) and test.id in aliases:
            return True
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            return any(self._implies(value, aliases) for value in test.values)
        return False

    def _implies_not(self, test: ast.expr, aliases: frozenset[str]) -> bool:
        """Whether ``test`` being truthy implies telemetry is *disabled*."""
        return isinstance(test, ast.UnaryOp) and isinstance(
            test.op, ast.Not
        ) and self._implies(test.operand, aliases)

    def _mark(self, node: ast.AST) -> None:
        self._guarded.add(id(node))
        for child in ast.walk(node):
            self._guarded.add(id(child))

    def _scan_stmts(
        self, stmts: list[ast.stmt], guarded: bool, aliases: frozenset[str]
    ) -> None:
        remaining_guarded = guarded
        for index, stmt in enumerate(stmts):
            if remaining_guarded:
                self._mark(stmt)
                continue
            if isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, False, aliases)
                implies = self._implies(stmt.test, aliases)
                self._scan_stmts(stmt.body, implies, aliases)
                implies_not = self._implies_not(stmt.test, aliases)
                self._scan_stmts(stmt.orelse, implies_not, aliases)
                # Early-exit guard: ``if not TELEMETRY.enabled: ...; return``
                # leaves the rest of this suite reachable only when enabled.
                if implies_not and not stmt.orelse and _terminates(stmt.body):
                    remaining_guarded = True
                # Symmetric shape with the enabled work in the else branch.
                if implies and not stmt.orelse and _terminates(stmt.body):
                    pass  # the remainder runs only when *disabled*: no mark
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                body_guarded = stmt.name.startswith(HELPER_PREFIX)
                self._scan_stmts(
                    stmt.body, body_guarded, self._collect_aliases(stmt)
                )
            elif isinstance(stmt, ast.ClassDef):
                self._scan_stmts(stmt.body, False, aliases)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                for expr in ast.iter_child_nodes(stmt):
                    if isinstance(expr, ast.expr):
                        self._scan_expr(expr, False, aliases)
                self._scan_stmts(stmt.body, False, aliases)
                self._scan_stmts(stmt.orelse, False, aliases)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, False, aliases)
                self._scan_stmts(stmt.body, False, aliases)
            elif isinstance(stmt, ast.Try):
                self._scan_stmts(stmt.body, False, aliases)
                for handler in stmt.handlers:
                    self._scan_stmts(handler.body, False, aliases)
                self._scan_stmts(stmt.orelse, False, aliases)
                self._scan_stmts(stmt.finalbody, False, aliases)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._scan_expr(child, False, aliases)
                    elif isinstance(child, ast.stmt):
                        self._scan_stmts([child], False, aliases)

    def _scan_expr(
        self, expr: ast.expr, guarded: bool, aliases: frozenset[str]
    ) -> None:
        if guarded:
            self._mark(expr)
            return
        if isinstance(expr, ast.IfExp):
            self._scan_expr(expr.test, False, aliases)
            self._scan_expr(expr.body, self._implies(expr.test, aliases), aliases)
            self._scan_expr(
                expr.orelse, self._implies_not(expr.test, aliases), aliases
            )
            return
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
            seen_guard = False
            for value in expr.values:
                self._scan_expr(value, seen_guard, aliases)
                seen_guard = seen_guard or self._implies(value, aliases)
            return
        if isinstance(expr, ast.Lambda):
            self._scan_expr(expr.body, False, aliases)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan_expr(child, False, aliases)
