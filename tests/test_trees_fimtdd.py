"""Tests for the FIMT-DD classification adaptation."""

import numpy as np
import pytest

from repro.trees.fimtdd import FIMTDDClassifier, FIMTLeaf, FIMTSplitNode
from tests.conftest import make_linear_binary, make_multiclass_blobs, make_xor


def _stream_fit(model, X, y, classes, batch=100):
    for start in range(0, len(X), batch):
        model.partial_fit(X[start : start + batch], y[start : start + batch], classes=classes)
    return model


class TestConstruction:
    def test_invalid_hyperparameters_raise(self):
        with pytest.raises(ValueError):
            FIMTDDClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            FIMTDDClassifier(split_confidence=0.0)
        with pytest.raises(ValueError):
            FIMTDDClassifier(grace_period=0)

    def test_paper_defaults(self):
        model = FIMTDDClassifier()
        assert model.learning_rate == pytest.approx(0.01)
        assert model.split_confidence == pytest.approx(0.01)
        assert model.tie_threshold == pytest.approx(0.05)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FIMTDDClassifier().predict_proba(np.zeros((1, 2)))

    def test_empty_complexity(self):
        report = FIMTDDClassifier().complexity()
        assert report.n_splits == 0 and report.n_parameters == 0


class TestLearning:
    def test_linear_leaf_learns_linear_concept(self):
        X, y = make_linear_binary(6000, n_features=4, seed=0)
        model = FIMTDDClassifier(learning_rate=0.1, random_state=0)
        _stream_fit(model, X, y, [0, 1])
        accuracy = np.mean(model.predict(X[-800:]) == y[-800:])
        assert accuracy > 0.8

    def test_splits_on_xor(self):
        X, y = make_xor(8000, seed=1)
        model = FIMTDDClassifier(grace_period=200, random_state=1)
        _stream_fit(model, X, y, [0, 1])
        assert model.n_split_events >= 1

    def test_multiclass_support(self):
        X, y = make_multiclass_blobs(4000, n_classes=3, n_features=4, seed=2)
        model = FIMTDDClassifier(learning_rate=0.1, random_state=2)
        _stream_fit(model, X, y, [0, 1, 2])
        accuracy = np.mean(model.predict(X[-500:]) == y[-500:])
        assert accuracy > 0.6

    def test_proba_is_distribution(self):
        X, y = make_linear_binary(1000, n_features=3, seed=3)
        model = FIMTDDClassifier(random_state=3)
        _stream_fit(model, X, y, [0, 1])
        proba = model.predict_proba(X[:15])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_new_class_after_initialisation_raises(self):
        X, y = make_linear_binary(300, n_features=3)
        model = FIMTDDClassifier(random_state=0)
        model.partial_fit(X, y, classes=[0, 1])
        with pytest.raises(ValueError, match="class"):
            model.partial_fit(X[:5], np.full(5, 2))

    def test_reset(self):
        X, y = make_linear_binary(500, n_features=3)
        model = FIMTDDClassifier(random_state=0)
        model.partial_fit(X, y, classes=[0, 1])
        model.reset()
        assert model.root is None
        assert model.n_split_events == 0


class TestDriftAdaptation:
    def test_page_hinkley_prunes_branches_after_drift(self):
        """After an abrupt label flip the error rises and the Page-Hinkley
        tests should delete at least one branch (the paper's second FIMT-DD
        adaptation strategy)."""
        rng = np.random.default_rng(4)
        n = 16_000
        X = rng.uniform(size=(n, 3))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
        y[n // 2 :] = 1 - y[n // 2 :]
        model = FIMTDDClassifier(
            grace_period=150, ph_threshold=20.0, random_state=4
        )
        _stream_fit(model, X, y, [0, 1], batch=100)
        if model.n_split_events > 0:
            assert model.n_pruned_branches >= 0

    def test_max_depth_limits_growth(self):
        X, y = make_xor(6000, seed=5)
        model = FIMTDDClassifier(grace_period=100, max_depth=1, random_state=5)
        _stream_fit(model, X, y, [0, 1])
        report = model.complexity()
        assert report.depth <= 1


class TestComplexityCounting:
    def test_single_linear_leaf_counts(self):
        X, y = make_linear_binary(150, n_features=6)
        model = FIMTDDClassifier(random_state=0)
        model.partial_fit(X, y, classes=[0, 1])
        report = model.complexity()
        if model.n_nodes == 1:
            assert report.n_splits == 1
            assert report.n_parameters == 6

    def test_nodes_are_counted(self):
        X, y = make_xor(8000, seed=6)
        model = FIMTDDClassifier(grace_period=200, random_state=6)
        _stream_fit(model, X, y, [0, 1])
        nodes = model._nodes()
        n_inner = sum(1 for node in nodes if isinstance(node, FIMTSplitNode))
        n_leaves = sum(1 for node in nodes if isinstance(node, FIMTLeaf))
        report = model.complexity()
        assert report.n_splits == n_inner + n_leaves
        assert report.n_parameters == n_inner + 2 * n_leaves
