"""Tests for the prequential (test-then-train) evaluator."""

import numpy as np
import pytest

from repro.base import ComplexityReport, StreamClassifier
from repro.core.dmt import DynamicModelTree
from repro.evaluation.prequential import PrequentialEvaluator, PrequentialResult
from repro.streams.base import ArrayStream
from repro.streams.synthetic import SEAGenerator


class _CountingClassifier(StreamClassifier):
    """Classifier stub recording how it is called by the evaluator."""

    def __init__(self):
        super().__init__()
        self.fit_calls = 0
        self.predict_calls = 0
        self.samples_seen = 0

    def partial_fit(self, X, y, classes=None):
        X, y = self._validate_input(X, y)
        self._update_classes(y, classes)
        self.fit_calls += 1
        self.samples_seen += len(y)
        return self

    def predict_proba(self, X):
        X, _ = self._validate_input(X)
        if self.classes_ is None:
            raise RuntimeError("not fitted")
        self.predict_calls += 1
        proba = np.zeros((len(X), self.n_classes_))
        proba[:, 0] = 1.0
        return proba

    def complexity(self):
        return ComplexityReport(n_splits=1, n_parameters=2)

    def reset(self):
        return self


def _binary_stream(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 3))
    y = (X[:, 0] > 0.5).astype(int)
    return ArrayStream(X, y)


class TestPrequentialEvaluator:
    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            PrequentialEvaluator(batch_fraction=0.0)
        with pytest.raises(ValueError):
            PrequentialEvaluator(warmup_batches=0)

    def test_test_then_train_call_pattern(self):
        """Every batch trains once; every batch except the warm-up is scored."""
        stream = _binary_stream(n=1000)
        model = _CountingClassifier()
        evaluator = PrequentialEvaluator(batch_fraction=0.01)
        result = evaluator.evaluate(model, stream)
        assert model.fit_calls == 100
        assert model.predict_calls == 99
        assert result.n_iterations == 100
        assert result.n_samples == 1000
        assert len(result.f1_trace) == 99
        assert len(result.n_splits_trace) == 100

    def test_all_samples_are_used_once(self):
        stream = _binary_stream(n=505)
        model = _CountingClassifier()
        PrequentialEvaluator(batch_fraction=0.01).evaluate(model, stream)
        assert model.samples_seen == 505

    def test_max_iterations_caps_run(self):
        stream = _binary_stream(n=1000)
        result = PrequentialEvaluator(batch_fraction=0.01).evaluate(
            _CountingClassifier(), stream, max_iterations=10
        )
        assert result.n_iterations == 10

    def test_explicit_batch_size(self):
        stream = _binary_stream(n=200)
        result = PrequentialEvaluator(batch_size=50).evaluate(
            _CountingClassifier(), stream
        )
        assert result.n_iterations == 4

    def test_result_names_default_to_types(self):
        stream = _binary_stream(n=100)
        result = PrequentialEvaluator(batch_size=50).evaluate(
            _CountingClassifier(), stream
        )
        assert result.model_name == "_CountingClassifier"

    def test_summary_contains_headline_fields(self):
        stream = _binary_stream(n=300)
        result = PrequentialEvaluator(batch_size=30).evaluate(
            _CountingClassifier(), stream, model_name="stub", dataset_name="toy"
        )
        summary = result.summary()
        for key in (
            "model", "dataset", "f1_mean", "f1_std", "n_splits_mean",
            "n_parameters_mean", "time_mean",
        ):
            assert key in summary
        assert summary["model"] == "stub"
        assert summary["n_splits_mean"] == pytest.approx(1.0)

    def test_windowed_traces_have_iteration_length(self):
        stream = _binary_stream(n=500)
        result = PrequentialEvaluator(batch_size=25).evaluate(
            _CountingClassifier(), stream
        )
        f1_mean, f1_std = result.windowed_f1(window=5)
        assert len(f1_mean) == len(result.f1_trace)
        log_mean, _ = result.windowed_log_splits(window=5)
        assert len(log_mean) == len(result.n_splits_trace)

    def test_dmt_on_sea_beats_constant_classifier(self):
        stream = SEAGenerator(n_samples=4000, noise=0.1, seed=3)
        dmt_result = PrequentialEvaluator(batch_fraction=0.01).evaluate(
            DynamicModelTree(random_state=3), stream
        )
        stream_again = SEAGenerator(n_samples=4000, noise=0.1, seed=3)
        constant_result = PrequentialEvaluator(batch_fraction=0.01).evaluate(
            _CountingClassifier(), stream_again
        )
        assert dmt_result.f1_mean > constant_result.f1_mean

    def test_overall_confusion_is_exposed(self):
        stream = _binary_stream(n=400)
        result = PrequentialEvaluator(batch_size=40).evaluate(
            _CountingClassifier(), stream
        )
        assert result.overall_confusion.total == 360  # all but the warm-up batch

    def test_consumed_stream_is_restarted(self):
        """Regression: a consumed stream must not yield a silent empty result."""
        stream = _binary_stream(n=400)
        stream.take()  # fully consume
        assert stream.position == 400
        result = PrequentialEvaluator(batch_size=40).evaluate(
            _CountingClassifier(), stream
        )
        assert result.n_iterations == 10
        assert result.n_samples == 400

    def test_partially_consumed_stream_evaluates_full_stream(self):
        stream = _binary_stream(n=400, seed=5)
        stream.next_sample(123)
        partial = PrequentialEvaluator(batch_size=40).evaluate(
            _CountingClassifier(), stream
        )
        fresh = PrequentialEvaluator(batch_size=40).evaluate(
            _CountingClassifier(), _binary_stream(n=400, seed=5)
        )
        assert partial.n_samples == fresh.n_samples == 400
        assert partial.f1_trace == fresh.f1_trace


class TestPrequentialResult:
    def test_empty_result_summaries_are_zero(self):
        result = PrequentialResult(model_name="m", dataset_name="d")
        assert result.f1_mean == 0.0
        assert result.n_splits_mean == 0.0
        assert result.time_mean == 0.0

    def test_deterministic_summary_drops_time_fields(self):
        stream = _binary_stream(n=300)
        result = PrequentialEvaluator(batch_size=30).evaluate(
            _CountingClassifier(), stream
        )
        deterministic = result.deterministic_summary()
        assert "time_mean" not in deterministic
        assert "time_std" not in deterministic
        assert deterministic["f1_mean"] == result.summary()["f1_mean"]

    def test_result_state_round_trip(self):
        stream = _binary_stream(n=300)
        result = PrequentialEvaluator(batch_size=30).evaluate(
            _CountingClassifier(), stream, model_name="stub", dataset_name="toy"
        )
        clone = PrequentialResult.from_state(result.to_state())
        assert clone.summary() == result.summary()
        assert clone.f1_trace == result.f1_trace
        np.testing.assert_array_equal(
            clone.overall_confusion.matrix, result.overall_confusion.matrix
        )
