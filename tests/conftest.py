"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_linear_binary(n: int, n_features: int = 4, seed: int = 0, noise: float = 0.0):
    """Linearly separable binary data (optionally with label noise)."""
    generator = np.random.default_rng(seed)
    X = generator.uniform(0.0, 1.0, size=(n, n_features))
    weights = np.linspace(1.0, 2.0, n_features)
    y = (X @ weights > weights.sum() / 2.0).astype(int)
    if noise > 0:
        flip = generator.random(n) < noise
        y = np.where(flip, 1 - y, y)
    return X, y


def make_xor(n: int, seed: int = 0):
    """2-D XOR data: not linearly separable, needs at least one split."""
    generator = np.random.default_rng(seed)
    X = generator.uniform(0.0, 1.0, size=(n, 2))
    y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
    return X, y


def make_multiclass_blobs(n: int, n_classes: int = 3, n_features: int = 5, seed: int = 0):
    """Well-separated Gaussian blobs for multiclass tests."""
    generator = np.random.default_rng(seed)
    centres = generator.uniform(0.0, 1.0, size=(n_classes, n_features))
    y = generator.integers(0, n_classes, size=n)
    X = centres[y] + generator.normal(0.0, 0.05, size=(n, n_features))
    return X, y


@pytest.fixture
def linear_binary():
    return make_linear_binary(600, seed=7)


@pytest.fixture
def xor_data():
    return make_xor(800, seed=3)


@pytest.fixture
def multiclass_blobs():
    return make_multiclass_blobs(600, seed=5)
