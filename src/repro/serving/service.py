"""Batched scoring service with per-model latency/throughput accounting.

:class:`ScoringService` is the request-facing layer: it resolves a model name
through a :class:`~repro.serving.registry.ModelRegistry` at call time (so hot
swaps take effect immediately), scores requests in bounded batches, and keeps
lightweight per-model counters -- request count, rows scored, latency mean /
max and rows per second -- that a monitoring endpoint can expose.
"""

from __future__ import annotations

import math
import threading
import time

import numpy as np

from repro.serving.registry import ModelRegistry


class ScoringStats:
    """Running latency/throughput counters for one model name."""

    __slots__ = (
        "n_requests",
        "n_rows",
        "total_seconds",
        "max_latency",
        "min_latency",
    )

    def __init__(self) -> None:
        self.n_requests = 0
        self.n_rows = 0
        self.total_seconds = 0.0
        self.max_latency = 0.0
        self.min_latency = math.inf

    def observe(self, n_rows: int, seconds: float) -> None:
        self.n_requests += 1
        self.n_rows += int(n_rows)
        self.total_seconds += float(seconds)
        self.max_latency = max(self.max_latency, seconds)
        self.min_latency = min(self.min_latency, seconds)

    @property
    def mean_latency(self) -> float:
        return self.total_seconds / self.n_requests if self.n_requests else 0.0

    @property
    def rows_per_second(self) -> float:
        return self.n_rows / self.total_seconds if self.total_seconds > 0 else 0.0

    def snapshot(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "n_rows": self.n_rows,
            "total_seconds": self.total_seconds,
            "mean_latency_seconds": self.mean_latency,
            "max_latency_seconds": self.max_latency,
            "min_latency_seconds": (
                self.min_latency if self.n_requests else 0.0
            ),
            "rows_per_second": self.rows_per_second,
        }


class ScoringService:
    """Score requests against registered models, in bounded batches.

    Parameters
    ----------
    registry:
        The model registry to resolve names against.  A fresh one is created
        when omitted, which is convenient for tests and examples.
    max_batch_size:
        Upper bound on the number of rows handed to a model in one call.
        Larger requests are chunked; ``None`` scores each request whole.
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        max_batch_size: int | None = None,
    ) -> None:
        if max_batch_size is not None and max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1 or None, got {max_batch_size!r}."
            )
        self.registry = registry if registry is not None else ModelRegistry()
        self.max_batch_size = max_batch_size
        self._lock = threading.Lock()
        self._stats: dict[str, ScoringStats] = {}

    # -------------------------------------------------------------- scoring
    def predict(self, name: str, X: np.ndarray) -> np.ndarray:
        """Class labels of the active model for ``name`` on ``X``."""
        return self._score(name, X, "predict")

    def predict_proba(self, name: str, X: np.ndarray) -> np.ndarray:
        """Class probabilities of the active model for ``name`` on ``X``."""
        return self._score(name, X, "predict_proba")

    def _score(self, name: str, X: np.ndarray, method: str) -> np.ndarray:
        model = self.registry.get(name)
        X = np.asarray(X)
        started = time.perf_counter()
        score = getattr(model, method)
        if self.max_batch_size is None or len(X) <= self.max_batch_size:
            result = score(X)
        else:
            chunks = [
                score(X[start : start + self.max_batch_size])
                for start in range(0, len(X), self.max_batch_size)
            ]
            result = np.concatenate(chunks, axis=0)
        elapsed = time.perf_counter() - started
        with self._lock:
            self._stats.setdefault(name, ScoringStats()).observe(len(X), elapsed)
        return result

    # ------------------------------------------------------------ monitoring
    def stats(self, name: str) -> dict:
        """Counter snapshot for one model name (zeros if never scored)."""
        with self._lock:
            stats = self._stats.get(name)
            return stats.snapshot() if stats else ScoringStats().snapshot()

    def metrics(self) -> dict[str, dict]:
        """Counter snapshots for every model name scored so far."""
        with self._lock:
            return {name: stats.snapshot() for name, stats in self._stats.items()}

    def reset_stats(self, name: str | None = None) -> None:
        """Clear the counters of one model (or of all models)."""
        with self._lock:
            if name is None:
                self._stats.clear()
            else:
                self._stats.pop(name, None)
