"""DDM -- Drift Detection Method (Gama et al., 2004).

Monitors the error rate of a classifier as a Bernoulli process.  When the
observed error rate plus its standard deviation exceeds the historical
minimum by two (warning) or three (drift) standard deviations, the detector
raises the corresponding flag.  Included as an extra substrate for ablation
experiments; none of the paper's headline baselines rely on it directly.
"""

from __future__ import annotations

import math

from repro.drift.base import BaseDriftDetector


class DDM(BaseDriftDetector):
    """Drift Detection Method over a stream of 0/1 error indicators.

    Parameters
    ----------
    min_observations:
        Number of observations before the detector may fire.
    warning_level:
        Number of standard deviations for the warning zone (default 2).
    drift_level:
        Number of standard deviations for the drift signal (default 3).
    """

    def __init__(
        self,
        min_observations: int = 30,
        warning_level: float = 2.0,
        drift_level: float = 3.0,
    ) -> None:
        super().__init__()
        if warning_level >= drift_level:
            raise ValueError(
                "warning_level must be smaller than drift_level "
                f"(got {warning_level!r} >= {drift_level!r})."
            )
        self.min_observations = int(min_observations)
        self.warning_level = float(warning_level)
        self.drift_level = float(drift_level)
        self._error_rate = 0.0
        self._std = 0.0
        self._min_error_rate = math.inf
        self._min_std = math.inf

    def update(self, value: float) -> bool:
        """Add one error indicator (1 = misclassified, 0 = correct)."""
        value = float(value)
        if value not in (0.0, 1.0):
            raise ValueError(f"DDM expects 0/1 error indicators, got {value!r}.")
        self.n_observations += 1
        self._error_rate += (value - self._error_rate) / self.n_observations
        self._std = math.sqrt(
            max(self._error_rate * (1.0 - self._error_rate), 0.0)
            / self.n_observations
        )

        self.in_drift = False
        self.in_warning = False
        if self.n_observations < self.min_observations:
            return False

        if self._error_rate + self._std <= self._min_error_rate + self._min_std:
            self._min_error_rate = self._error_rate
            self._min_std = self._std

        level = self._error_rate + self._std
        baseline = self._min_error_rate
        if level > baseline + self.drift_level * self._min_std:
            self.in_drift = True
            self._reset_statistics()
        elif level > baseline + self.warning_level * self._min_std:
            self.in_warning = True
        return self.in_drift

    def _reset_statistics(self) -> None:
        self.n_observations = 0
        self._error_rate = 0.0
        self._std = 0.0
        self._min_error_rate = math.inf
        self._min_std = math.inf

    def reset(self) -> "DDM":
        super().reset()
        self._reset_statistics()
        return self
