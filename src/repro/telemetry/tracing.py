"""Lightweight span tracing: nested, named wall-clock timing of layers.

``with telemetry.span("layer"):`` times a code region and records the
duration into a latency histogram labelled with the span's *path* -- nested
spans concatenate names with ``/`` (per thread), so one export shows e.g.
``evaluation.run/model.partial_fit`` separately from a bare
``model.partial_fit`` issued by the serving layer.

When telemetry is disabled, :meth:`Tracer.span` returns a shared no-op
context manager: no allocation, no clock reads, nothing but one branch on
the hot path.
"""

from __future__ import annotations

import threading
from time import perf_counter
from types import TracebackType
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.telemetry.metrics import Histogram, MetricsRegistry

#: Histogram receiving one observation per finished span, labelled by path.
SPAN_METRIC = "repro.trace.span_seconds"


class _NoopSpan:
    """Shared do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Span:
    """One active traced region; records its duration on exit.

    Enter/exit are on the enabled hot path (two spans per scoring request),
    so they keep a reference to the thread's stack instead of re-resolving
    the thread-local on exit, and read the clock exactly once per side.
    """

    __slots__ = ("_tracer", "_name", "path", "_started", "_active_stack")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self.path = name
        self._started = 0.0
        self._active_stack: list[str] | None = None

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self._active_stack = stack
        if stack:
            self.path = stack[-1] + "/" + self._name
        stack.append(self.path)
        self._started = perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        elapsed = perf_counter() - self._started
        assert self._active_stack is not None  # __enter__ ran
        self._active_stack.pop()
        self._tracer._histogram(self.path).observe(elapsed)
        return False


class Tracer:
    """Per-process tracer writing span durations into a metrics registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._local = threading.local()
        self._histograms: dict[str, Histogram] = {}
        self._generation = registry.generation

    def _histogram(self, path: str) -> Histogram:
        """Histogram handle for a span path, cached per registry generation.

        Span exits are the hottest metric lookup in the package (two per
        scoring request); caching the resolved handle replaces the registry's
        label-key construction with one dict read.
        """
        if self._generation != self.registry.generation:
            self._histograms.clear()
            self._generation = self.registry.generation
        histogram = self._histograms.get(path)
        if histogram is None:
            histogram = self.registry.histogram(SPAN_METRIC, span=path)
            self._histograms[path] = histogram
        return histogram

    def _stack(self) -> list[str]:
        try:
            stack: list[str] = self._local.stack
        except AttributeError:
            stack = self._local.stack = []
        return stack

    def span(self, name: str) -> Span:
        """A context manager timing ``name`` (nested under active spans)."""
        return Span(self, name)

    def current_path(self) -> str | None:
        """Path of the innermost active span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None


#: What span() call sites receive: a real span or the shared no-op.
SpanHandle = Span | _NoopSpan
