"""Table V -- computation time per test/train iteration (lower is better).

Regenerates the per-iteration wall-clock comparison of Table V.  Absolute
values depend on hardware and on the benchmark scale; the shape target is the
ordering: the plain VFDT is the fastest tree and the DMT pays a moderate
overhead for maintaining inner-node models, well below EFDT's re-evaluation
cost at full scale.
"""

from repro.experiments.tables import table5_time


def test_table5_time(benchmark, standalone_suite):
    records, text = benchmark.pedantic(
        table5_time, args=(standalone_suite,), rounds=1, iterations=1
    )
    print("\n" + text)

    by_model = {record["model"]: record for record in records}
    assert all(record["time_mean"] >= 0.0 for record in records)
    assert all(record["time_std"] >= 0.0 for record in records)

    if {"VFDT (MC)", "DMT (ours)"} <= set(by_model):
        # The majority-class VFDT is the cheapest stand-alone model.
        assert by_model["VFDT (MC)"]["time_mean"] <= by_model["DMT (ours)"]["time_mean"] * 5
